package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/bytesutil"
)

func rng(start, stop string) RowRange {
	r := RowRange{}
	if start != "" {
		r.Start = []byte(start)
	}
	if stop != "" {
		r.Stop = []byte(stop)
	}
	return r
}

func TestRowRangeBasics(t *testing.T) {
	if !fullRange().isFull() || fullRange().isEmpty() {
		t.Error("full range misclassified")
	}
	if !rng("b", "b").isEmpty() || !rng("c", "b").isEmpty() {
		t.Error("empty range misclassified")
	}
	r := rng("b", "d")
	for key, want := range map[string]bool{"a": false, "b": true, "c": true, "d": false} {
		if r.contains([]byte(key)) != want {
			t.Errorf("contains(%q) = %v", key, !want)
		}
	}
}

func TestIntersectRangesPaperExample(t *testing.T) {
	// §VI-A.5: [a,b] ∩ [c,d] with c<b and a<c merges to [c,b].
	got := intersectRanges(rng("a", "b"), rng("c", "b"))
	_ = got
	m := intersectRanges(rng("a", "m"), rng("g", "z"))
	if string(m.Start) != "g" || string(m.Stop) != "m" {
		t.Errorf("intersect = %s", m)
	}
	empty := intersectRanges(rng("a", "b"), rng("c", "d"))
	if !empty.isEmpty() {
		t.Errorf("disjoint intersect = %s", empty)
	}
	half := intersectRanges(fullRange(), rng("g", ""))
	if string(half.Start) != "g" || half.Stop != nil {
		t.Errorf("half intersect = %s", half)
	}
}

func TestRangeSetUnionMerges(t *testing.T) {
	// §VI-A.5: [a,b] ∪ [c,d] with overlap converts to [a,d].
	s := singleSet(rng("a", "c")).Union(singleSet(rng("b", "d")))
	if len(s.Ranges()) != 1 {
		t.Fatalf("union = %v", s.Ranges())
	}
	if string(s.Ranges()[0].Start) != "a" || string(s.Ranges()[0].Stop) != "d" {
		t.Errorf("union = %s", s.Ranges()[0])
	}
	// Adjacent ranges merge too.
	adj := singleSet(rng("a", "b")).Union(singleSet(rng("b", "c")))
	if len(adj.Ranges()) != 1 {
		t.Errorf("adjacent union = %v", adj.Ranges())
	}
	// Disjoint ranges stay apart.
	dis := singleSet(rng("a", "b")).Union(singleSet(rng("x", "z")))
	if len(dis.Ranges()) != 2 {
		t.Errorf("disjoint union = %v", dis.Ranges())
	}
}

func TestRangeSetIntersect(t *testing.T) {
	s := singleSet(rng("a", "m")).Union(singleSet(rng("p", "z")))
	got := s.Intersect(singleSet(rng("g", "r")))
	if len(got.Ranges()) != 2 {
		t.Fatalf("intersect = %v", got.Ranges())
	}
	if string(got.Ranges()[0].Start) != "g" || string(got.Ranges()[0].Stop) != "m" {
		t.Errorf("first = %s", got.Ranges()[0])
	}
	if string(got.Ranges()[1].Start) != "p" || string(got.Ranges()[1].Stop) != "r" {
		t.Errorf("second = %s", got.Ranges()[1])
	}
	if !s.Intersect(emptySet()).IsEmpty() {
		t.Error("intersect with empty must be empty")
	}
	if got := fullSet().Intersect(s); len(got.Ranges()) != 2 {
		t.Errorf("full intersect = %v", got.Ranges())
	}
}

func TestRangeSetFullAndEmpty(t *testing.T) {
	if !fullSet().IsFull() || fullSet().IsEmpty() {
		t.Error("full set misclassified")
	}
	if !emptySet().IsEmpty() || emptySet().IsFull() {
		t.Error("empty set misclassified")
	}
	if !singleSet(rng("b", "a")).IsEmpty() {
		t.Error("inverted range must normalize to empty")
	}
}

func TestPointAndPrefixSets(t *testing.T) {
	p := pointSet([]byte("k1"), []byte("k2"))
	if !p.Contains([]byte("k1")) || !p.Contains([]byte("k2")) {
		t.Error("points missing")
	}
	if p.Contains([]byte("k1x")) || p.Contains([]byte("k0")) {
		t.Error("point set too wide")
	}
	pre := prefixSet([]byte("user-"))
	if !pre.Contains([]byte("user-1")) || !pre.Contains([]byte("user-")) {
		t.Error("prefix set misses members")
	}
	if pre.Contains([]byte("uses")) || pre.Contains([]byte("user")) {
		t.Error("prefix set too wide")
	}
	if !isPoint(pointSet([]byte("k")).Ranges()[0]) {
		t.Error("point range not detected")
	}
	if isPoint(prefixSet([]byte("k")).Ranges()[0]) {
		t.Error("prefix range misdetected as point")
	}
}

func TestRangeSetUnboundedNormalize(t *testing.T) {
	s := singleSet(rng("m", "")).Union(singleSet(rng("a", "c")))
	rs := s.Ranges()
	if len(rs) != 2 || rs[1].Stop != nil {
		t.Errorf("ranges = %v", rs)
	}
	// A range unbounded above swallows later ranges.
	s2 := singleSet(rng("a", "")).Union(singleSet(rng("m", "z")))
	if len(s2.Ranges()) != 1 || s2.Ranges()[0].Stop != nil {
		t.Errorf("swallow = %v", s2.Ranges())
	}
}

func TestRangeSetContainsMatchesNaiveProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		set := emptySet()
		var raw []RowRange
		for i := 0; i < n; i++ {
			a := []byte(fmt.Sprintf("%03d", r.Intn(100)))
			b := []byte(fmt.Sprintf("%03d", r.Intn(100)))
			if bytes.Compare(a, b) > 0 {
				a, b = b, a
			}
			rr := RowRange{Start: a, Stop: b}
			raw = append(raw, rr)
			set = set.Union(singleSet(rr))
		}
		for probe := 0; probe < 30; probe++ {
			key := []byte(fmt.Sprintf("%03d", r.Intn(100)))
			naive := false
			for _, rr := range raw {
				if rr.contains(key) {
					naive = true
					break
				}
			}
			if set.Contains(key) != naive {
				return false
			}
		}
		// Canonical: ranges sorted and disjoint.
		rs := set.Ranges()
		for i := 1; i < len(rs); i++ {
			if bytes.Compare(rs[i-1].Stop, rs[i].Start) > 0 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrefixSuccessorUsedForUpperBound(t *testing.T) {
	enc := []byte{0xFF, 0xFF}
	ps := prefixSet(enc)
	if ps.Ranges()[0].Stop != nil {
		t.Error("all-0xFF prefix must be unbounded above")
	}
	if succ := bytesutil.PrefixSuccessor(enc); succ != nil {
		t.Errorf("PrefixSuccessor(FFFF) = %x", succ)
	}
}
