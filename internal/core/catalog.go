// Package core implements SHC itself — the paper's contribution: a JSON
// catalog mapping HBase tables to relational schemas (§IV-A), pluggable
// field coders (§IV-B), and an HBase relation that plugs into the engine's
// data-source seam with partition pruning, column pruning, selective
// predicate pushdown, operator fusion, and data locality (§VI-A). The
// package also provides the generic baseline relation modelling how stock
// Spark SQL reads HBase, which every experiment compares against.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/plan"
)

// RowkeyCF is the pseudo column family that marks catalog columns as row
// key dimensions (paper Code 1: "cf":"rowkey").
const RowkeyCF = "rowkey"

// Catalog maps an HBase table to a relational schema. It is defined by the
// JSON document of the paper's Code 1.
type Catalog struct {
	Table   TableSpec             `json:"table"`
	Rowkey  string                `json:"rowkey"`
	Columns map[string]ColumnSpec `json:"columns"`

	// derived, filled by Parse/finish:
	rowkeyFields []string // relational names of rowkey dimensions, in key order
	dataFields   []string // non-rowkey column names, sorted
	schema       plan.Schema
}

// TableSpec names the HBase table and its coder.
type TableSpec struct {
	Namespace  string `json:"namespace"`
	Name       string `json:"name"`
	TableCoder string `json:"tableCoder"`
	Version    string `json:"Version"`
}

// ColumnSpec maps one relational column to HBase coordinates.
type ColumnSpec struct {
	CF   string `json:"cf"`
	Col  string `json:"col"`
	Type string `json:"type"`
	Avro string `json:"avro,omitempty"`
}

// ParseCatalog parses and validates a catalog JSON document.
func ParseCatalog(doc string) (*Catalog, error) {
	var c Catalog
	if err := json.Unmarshal([]byte(doc), &c); err != nil {
		return nil, fmt.Errorf("core: bad catalog JSON: %w", err)
	}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return &c, nil
}

// finish validates the catalog and derives the relational schema. Rowkey
// dimensions come first in declared key order, then data columns sorted by
// name (JSON objects are unordered, so the order must be derived).
func (c *Catalog) finish() error {
	if c.Table.Name == "" {
		return fmt.Errorf("core: catalog needs table.name")
	}
	if c.Rowkey == "" {
		return fmt.Errorf("core: catalog needs a rowkey")
	}
	if len(c.Columns) == 0 {
		return fmt.Errorf("core: catalog needs columns")
	}
	keyParts := strings.Split(c.Rowkey, ":")
	// Map HBase rowkey part -> relational column name.
	partToField := make(map[string]string)
	for name, spec := range c.Columns {
		if spec.CF == "" || spec.Col == "" {
			return fmt.Errorf("core: column %q needs cf and col", name)
		}
		if spec.Type == "" && spec.Avro == "" {
			return fmt.Errorf("core: column %q needs a type", name)
		}
		if spec.CF == RowkeyCF {
			if prev, dup := partToField[spec.Col]; dup {
				return fmt.Errorf("core: rowkey part %q mapped by both %q and %q", spec.Col, prev, name)
			}
			partToField[spec.Col] = name
		}
	}
	c.rowkeyFields = c.rowkeyFields[:0]
	for _, part := range keyParts {
		field, ok := partToField[part]
		if !ok {
			return fmt.Errorf("core: rowkey part %q has no column with cf=rowkey", part)
		}
		c.rowkeyFields = append(c.rowkeyFields, field)
	}
	if len(partToField) != len(keyParts) {
		return fmt.Errorf("core: %d rowkey columns declared but rowkey has %d parts", len(partToField), len(keyParts))
	}
	c.dataFields = c.dataFields[:0]
	for name, spec := range c.Columns {
		if spec.CF != RowkeyCF {
			c.dataFields = append(c.dataFields, name)
		}
	}
	sort.Strings(c.dataFields)

	c.schema = c.schema[:0]
	for _, name := range append(append([]string{}, c.rowkeyFields...), c.dataFields...) {
		spec := c.Columns[name]
		var t plan.DataType
		var err error
		if spec.Avro != "" {
			// An Avro-typed column surfaces as binary unless a type is given.
			t = plan.TypeBinary
			if spec.Type != "" {
				if t, err = plan.ParseDataType(spec.Type); err != nil {
					return err
				}
			}
		} else if t, err = plan.ParseDataType(spec.Type); err != nil {
			return fmt.Errorf("core: column %q: %w", name, err)
		}
		c.schema = append(c.schema, plan.Field{Name: name, Type: t})
	}
	// Variable-length rowkey dimensions other than the last cannot be
	// decoded unambiguously without a terminator; the coder handles that,
	// but binary is disallowed there outright.
	for i, f := range c.rowkeyFields[:len(c.rowkeyFields)-1] {
		if c.fieldType(f) == plan.TypeBinary {
			return fmt.Errorf("core: rowkey dimension %d (%q) cannot be binary unless last", i, f)
		}
	}
	return nil
}

// Schema returns the catalog's relational schema: rowkey dimensions first
// (in key order), then data columns sorted by name.
func (c *Catalog) Schema() plan.Schema { return c.schema }

// RowkeyFields lists the relational names of the rowkey dimensions in key
// order.
func (c *Catalog) RowkeyFields() []string { return c.rowkeyFields }

// IsRowkeyField reports whether name is a rowkey dimension, and its
// position when it is.
func (c *Catalog) IsRowkeyField(name string) (int, bool) {
	for i, f := range c.rowkeyFields {
		if f == name {
			return i, true
		}
	}
	return -1, false
}

// fieldType returns a column's data type (TypeUnknown when absent).
func (c *Catalog) fieldType(name string) plan.DataType {
	for _, f := range c.schema {
		if f.Name == name {
			return f.Type
		}
	}
	return plan.TypeUnknown
}

// Column returns the HBase coordinates of a relational column.
func (c *Catalog) Column(name string) (ColumnSpec, error) {
	spec, ok := c.Columns[name]
	if !ok {
		return ColumnSpec{}, fmt.Errorf("core: catalog for %q has no column %q", c.Table.Name, name)
	}
	return spec, nil
}

// Families lists the distinct column families of the data columns, sorted.
func (c *Catalog) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, name := range c.dataFields {
		cf := c.Columns[name].CF
		if !seen[cf] {
			seen[cf] = true
			out = append(out, cf)
		}
	}
	sort.Strings(out)
	return out
}

// TableDescriptor derives the HBase descriptor for creating the table.
func (c *Catalog) TableDescriptor(maxVersions int) hbase.TableDescriptor {
	return hbase.TableDescriptor{Name: c.Table.Name, Families: c.Families(), MaxVersions: maxVersions}
}

// Coder instantiates the catalog's field coder (tableCoder).
func (c *Catalog) Coder() (FieldCoder, error) {
	return CoderByName(c.Table.TableCoder)
}
