package core

import (
	"bytes"
	"context"
	"testing"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/plan"
)

// TestFusedPagerResumesAcrossSplit splits the region a paged fused scan is
// walking between two pages. The old (region ID, cursor) pair is dead — the
// region no longer exists — so the pager must re-lookup by the cursor KEY,
// remap the remaining range onto the daughters, and finish with exactly the
// rows an undisturbed scan would have produced.
func TestFusedPagerResumesAcrossSplit(t *testing.T) {
	rig := newRig(t, Options{NewTableRegions: 1}, 60)

	baseParts, err := rig.rel.BuildScan([]string{"id", "age"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline := scanAll(t, baseParts)
	if len(baseline) != 60 {
		t.Fatalf("baseline rows = %d", len(baseline))
	}

	parts, err := rig.rel.BuildScan([]string{"id", "age"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("partitions = %d, want 1", len(parts))
	}
	p := parts[0].(*hbasePartition)
	pager := newFusedPager(p, p.ops, 10)
	ctx := context.Background()

	var rows []plan.Row
	var scratch []any
	first := true
	for {
		resp, err := pager.next(ctx)
		if err != nil {
			t.Fatalf("paged fused scan across split: %v", err)
		}
		if resp == nil {
			break
		}
		rows, scratch, err = p.rel.decodeResults(resp.Results, p.required, rows, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if first {
			first = false
			regions, err := rig.client.Regions("users")
			if err != nil {
				t.Fatal(err)
			}
			if err := rig.cluster.Master.SplitRegion("users", regions[0].ID); err != nil {
				t.Fatalf("split under pager: %v", err)
			}
		}
	}
	_ = scratch
	if len(rows) != len(baseline) {
		t.Fatalf("rows across split = %d, want %d", len(rows), len(baseline))
	}
	for i := range rows {
		if rows[i][0] != baseline[i][0] || rows[i][1] != baseline[i][1] {
			t.Fatalf("row %d = %v, want %v (order or content drifted)", i, rows[i], baseline[i])
		}
	}
}

func TestRemapOpScanSplitsAcrossFreshRegions(t *testing.T) {
	regions := []hbase.RegionInfo{
		{ID: "r1", EndKey: []byte("m"), Epoch: 3},
		{ID: "r2", StartKey: []byte("m"), Epoch: 4},
	}
	op := hbase.ScanOp{RegionID: "gone", Scan: &hbase.Scan{StartRow: []byte("c"), StopRow: []byte("x"), Limit: 7}}
	out := remapOp(op, regions)
	if len(out) != 2 {
		t.Fatalf("remapped ops = %d, want 2", len(out))
	}
	if out[0].RegionID != "r1" || out[0].Epoch != 3 ||
		!bytes.Equal(out[0].Scan.StartRow, []byte("c")) || !bytes.Equal(out[0].Scan.StopRow, []byte("m")) {
		t.Errorf("low op = %+v", out[0])
	}
	if out[1].RegionID != "r2" || out[1].Epoch != 4 ||
		!bytes.Equal(out[1].Scan.StartRow, []byte("m")) || !bytes.Equal(out[1].Scan.StopRow, []byte("x")) {
		t.Errorf("high op = %+v", out[1])
	}
	if out[0].Scan.Limit != 7 || out[1].Scan.Limit != 7 {
		t.Error("per-op limit must survive the remap")
	}
	// A range entirely outside the fresh regions' coverage folds to nothing.
	empty := remapOp(hbase.ScanOp{RegionID: "gone", Scan: &hbase.Scan{StartRow: []byte("x"), StopRow: []byte("x")}}, nil)
	if len(empty) != 0 {
		t.Errorf("no-region remap = %d ops", len(empty))
	}
}

func TestRemapOpRowsPartitionByContainingRegion(t *testing.T) {
	regions := []hbase.RegionInfo{
		{ID: "r1", EndKey: []byte("m")},
		{ID: "r2", StartKey: []byte("m")},
	}
	tmpl := &hbase.Scan{}
	op := hbase.ScanOp{RegionID: "gone", Rows: [][]byte{[]byte("a"), []byte("c"), []byte("n")}, Scan: tmpl}
	out := remapOp(op, regions)
	if len(out) != 2 {
		t.Fatalf("remapped ops = %d, want 2", len(out))
	}
	if out[0].RegionID != "r1" || len(out[0].Rows) != 2 {
		t.Errorf("low rows op = %+v", out[0])
	}
	if out[1].RegionID != "r2" || len(out[1].Rows) != 1 || !bytes.Equal(out[1].Rows[0], []byte("n")) {
		t.Errorf("high rows op = %+v", out[1])
	}
	if out[0].Scan != tmpl || out[1].Scan != tmpl {
		t.Error("bulk-get template must be carried through")
	}
}

func TestFoldCursorRewritesLeadOp(t *testing.T) {
	// Scan op: the cursor row becomes the op's own start row; Sent shrinks a
	// per-op limit.
	g := &fusedPager{ops: []hbase.ScanOp{
		{RegionID: "r1", Scan: &hbase.Scan{StartRow: []byte("a"), StopRow: []byte("z"), Limit: 10}},
	}}
	g.cursor = hbase.FusedCursor{Row: []byte("k"), Sent: 4}
	g.foldCursor()
	if len(g.ops) != 1 || !bytes.Equal(g.ops[0].Scan.StartRow, []byte("k")) || g.ops[0].Scan.Limit != 6 {
		t.Errorf("folded scan op = %+v", g.ops[0])
	}
	if g.cursor.Row != nil || g.cursor.Sent != 0 {
		t.Error("cursor must be cleared after folding")
	}

	// A limit the cursor has already exhausted drops the op entirely.
	g = &fusedPager{ops: []hbase.ScanOp{
		{RegionID: "r1", Scan: &hbase.Scan{Limit: 3}},
		{RegionID: "r2", Scan: &hbase.Scan{}},
	}}
	g.cursor = hbase.FusedCursor{Row: []byte("q"), Sent: 3}
	g.foldCursor()
	if len(g.ops) != 1 || g.ops[0].RegionID != "r2" {
		t.Errorf("exhausted lead op must drop: %+v", g.ops)
	}

	// Bulk get: rows already streamed are cut off the front.
	g = &fusedPager{ops: []hbase.ScanOp{
		{RegionID: "r1", Rows: [][]byte{[]byte("a"), []byte("b"), []byte("c")}},
	}}
	g.cursor = hbase.FusedCursor{RowIdx: 2}
	g.foldCursor()
	if len(g.ops) != 1 || len(g.ops[0].Rows) != 1 || !bytes.Equal(g.ops[0].Rows[0], []byte("c")) {
		t.Errorf("folded rows op = %+v", g.ops[0])
	}

	// The zero cursor folds to a no-op.
	g = &fusedPager{ops: []hbase.ScanOp{{RegionID: "r1", Scan: &hbase.Scan{StartRow: []byte("a")}}}}
	g.foldCursor()
	if !bytes.Equal(g.ops[0].Scan.StartRow, []byte("a")) {
		t.Error("zero cursor must not rewrite the op")
	}
}
