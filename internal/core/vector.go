package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/bytesutil"
	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// This file is the decode-to-vector path of the HBase relation: fused pages
// arrive column-major (CellBlock) when the server can pack them, and decode
// straight into typed vectors. Columns the consumer flags eager decode up
// front with per-type fast paths; everything else lands as raw bytes in
// lazy vectors and decodes only for the positions that survive filtering —
// late materialization over the paged scan RPC, with the same pager,
// cursor, and failover machinery as the row path.

// vecColSpec is the per-column decode plan for one partition scan.
type vecColSpec struct {
	name   string
	typ    plan.DataType
	keyDim int    // rowkey dimension; -1 for cell columns
	cf, q  string // HBase coordinates for cell columns
	eager  bool
}

// batchPool recycles column batches (and their vector storage) across
// partitions and queries — the fused pager otherwise allocates a fresh
// batch worth of vectors per partition per query.
var batchPool sync.Pool

// getBatch returns a pooled batch reconfigured for specs: vector storage is
// reused when the column's kind matches, rebuilt otherwise (eager vs lazy
// splits differ between queries).
func getBatch(schema plan.Schema, specs []vecColSpec, lazyDec []func([]byte) (any, error)) *plan.Batch {
	b, _ := batchPool.Get().(*plan.Batch)
	if b == nil || len(b.Cols) != len(schema) {
		b = &plan.Batch{Cols: make([]*plan.Vector, len(schema))}
	}
	b.Schema = schema
	for j := range specs {
		want := plan.KindLazy
		if specs[j].eager {
			want = plan.KindOf(schema[j].Type)
		}
		c := b.Cols[j]
		if c == nil || c.Kind != want || c.Typ != schema[j].Type {
			if specs[j].eager {
				c = plan.NewVector(schema[j].Type)
			} else {
				c = plan.NewLazyVector(schema[j].Type, nil)
			}
			b.Cols[j] = c
		}
		c.Decode = lazyDec[j]
	}
	b.Reset()
	return b
}

func putBatch(b *plan.Batch) {
	for _, c := range b.Cols {
		c.Decode = nil // don't retain per-query closures
	}
	batchPool.Put(b)
}

// ComputeVectors implements datasource.VectorScan: the same paged fused
// execution as ComputeBatches — double-buffered prefetch, LimitHint
// shrinking, cursor-exact failover — but pages are requested column-major
// and decoded into one reused column batch instead of row slices.
func (p *hbasePartition) ComputeVectors(ctx context.Context, opts datasource.BatchOptions, yield func(*plan.Batch) error) error {
	ctx = bridgeConsistency(ctx)
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = defaultFusedBatch
	}
	ops := p.ops
	if opts.LimitHint > 0 {
		ops = make([]hbase.ScanOp, len(p.ops))
		for i, op := range p.ops {
			if op.Scan != nil && len(op.Rows) == 0 {
				s := *op.Scan
				if s.Limit == 0 || s.Limit > opts.LimitHint {
					s.Limit = opts.LimitHint
				}
				op.Scan = &s
			}
			ops[i] = op
		}
	}

	specs, schema, lazyDec := p.rel.vecSpecs(p.required, opts.EagerColumns)
	batch := getBatch(schema, specs, lazyDec)
	defer putBatch(batch)

	pager := newFusedPager(p, ops, batchSize)
	pager.columnar = true
	type fusedPage struct {
		resp *hbase.ScanResponse
		err  error
	}
	fetch := func() chan fusedPage {
		ch := make(chan fusedPage, 1)
		go func() {
			resp, err := pager.next(ctx)
			ch <- fusedPage{resp: resp, err: err}
		}()
		return ch
	}

	meter := metrics.Scoped(ctx, p.rel.meter)
	pending := fetch()
	emitted := 0
	var keyScratch []any
	for pending != nil {
		pg := <-pending
		pending = nil
		if pg.err != nil {
			return pg.err
		}
		if pg.resp == nil {
			break
		}
		meter.Inc(metrics.FusedPages)
		n := len(pg.resp.Results)
		if pg.resp.Block != nil {
			n = pg.resp.Block.Len()
			meter.Inc(metrics.ColumnarPages)
		}
		// Pager state mutates only inside fetch goroutines; the channel
		// receive above happens-before this launch, so access stays serial.
		if !pager.done && (opts.LimitHint <= 0 || emitted+n < opts.LimitHint) {
			pending = fetch()
			meter.Inc(metrics.PagesPrefetched)
		}
		if opts.LimitHint > 0 && emitted+n > opts.LimitHint {
			n = opts.LimitHint - emitted
		}
		if n == 0 {
			continue
		}
		batch.Reset()
		var err error
		if pg.resp.Block != nil {
			err = p.rel.decodeBlock(batch, specs, pg.resp.Block, n, &keyScratch)
		} else {
			err = p.rel.decodeResultsToBatch(batch, specs, pg.resp.Results[:n], &keyScratch)
		}
		if err != nil {
			return err
		}
		batch.SetLen(n)
		emitted += n
		if err := yield(batch); err != nil {
			if errors.Is(err, datasource.ErrStopBatches) {
				return nil
			}
			return err
		}
	}
	return nil
}

// vecSpecs builds the per-column decode plan: HBase coordinates, rowkey
// dimensions, and the eager/lazy split. eagerCols nil marks every column
// eager.
func (r *HBaseRelation) vecSpecs(required []string, eagerCols []int) ([]vecColSpec, plan.Schema, []func([]byte) (any, error)) {
	eager := make([]bool, len(required))
	if eagerCols == nil {
		for i := range eager {
			eager[i] = true
		}
	} else {
		for _, i := range eagerCols {
			if i >= 0 && i < len(eager) {
				eager[i] = true
			}
		}
	}
	specs := make([]vecColSpec, len(required))
	schema := make(plan.Schema, len(required))
	lazyDec := make([]func([]byte) (any, error), len(required))
	for i, col := range required {
		t := r.cat.fieldType(col)
		schema[i] = plan.Field{Name: col, Type: t}
		specs[i] = vecColSpec{name: col, typ: t, keyDim: -1, eager: eager[i]}
		if dim, ok := r.cat.IsRowkeyField(col); ok {
			specs[i].keyDim = dim
			if !eager[i] {
				dim := dim
				lazyDec[i] = func(raw []byte) (any, error) {
					vals, err := r.codec.decodeRowkey(raw)
					if err != nil {
						return nil, err
					}
					return vals[dim], nil
				}
			}
			continue
		}
		// BuildScan validated the projection, so Column cannot fail here.
		spec, _ := r.cat.Column(col)
		specs[i].cf, specs[i].q = spec.CF, spec.Col
		if !eager[i] {
			col, t := col, t
			lazyDec[i] = func(raw []byte) (any, error) {
				v, err := r.coder.Decode(raw, t)
				if err != nil {
					return nil, fmt.Errorf("core: decode %s: %w", col, err)
				}
				return v, nil
			}
		}
	}
	return specs, schema, lazyDec
}

// decodeBlock fills batch from a column-major page: n rows of every spec'd
// column, eager columns through the typed fast path, lazy columns as raw
// bytes (absent cells become nulls either way).
func (r *HBaseRelation) decodeBlock(batch *plan.Batch, specs []vecColSpec, block *hbase.CellBlock, n int, keyScratch *[]any) error {
	if err := r.decodeKeys(batch, specs, block.Rows[:n], keyScratch); err != nil {
		return err
	}
	for j := range specs {
		s := &specs[j]
		if s.keyDim >= 0 {
			continue
		}
		vec := batch.Cols[j]
		var vals [][]byte
		for c := range block.Cols {
			if block.Cols[c].Family == s.cf && block.Cols[c].Qualifier == s.q {
				vals = block.Cols[c].Values
				break
			}
		}
		if vals == nil {
			// No row in this page has the column.
			for i := 0; i < n; i++ {
				vec.AppendNull()
			}
			continue
		}
		if !s.eager {
			for i := 0; i < n; i++ {
				if vals[i] == nil {
					vec.AppendNull()
				} else {
					vec.AppendRaw(vals[i])
				}
			}
			continue
		}
		if err := r.appendDecoded(vec, vals[:n], s); err != nil {
			return err
		}
	}
	return nil
}

// decodeResultsToBatch fills batch from a row-major page — the fallback
// when the server could not pack the page (multi-version rows, empty
// values).
func (r *HBaseRelation) decodeResultsToBatch(batch *plan.Batch, specs []vecColSpec, results []hbase.Result, keyScratch *[]any) error {
	rows := make([][]byte, len(results))
	for i := range results {
		rows[i] = results[i].Row
	}
	if err := r.decodeKeys(batch, specs, rows, keyScratch); err != nil {
		return err
	}
	var vals [][]byte
	for j := range specs {
		s := &specs[j]
		if s.keyDim >= 0 {
			continue
		}
		vals = vals[:0]
		for i := range results {
			raw, ok := results[i].Value(s.cf, s.q)
			if !ok {
				raw = nil
			}
			vals = append(vals, raw)
		}
		vec := batch.Cols[j]
		if !s.eager {
			for _, raw := range vals {
				if raw == nil {
					vec.AppendNull()
				} else {
					vec.AppendRaw(raw)
				}
			}
			continue
		}
		if err := r.appendDecoded(vec, vals, s); err != nil {
			return err
		}
	}
	return nil
}

// decodeKeys fills the rowkey-backed columns: eager dims decode each key
// once per row, lazy dims store the raw key.
func (r *HBaseRelation) decodeKeys(batch *plan.Batch, specs []vecColSpec, rows [][]byte, keyScratch *[]any) error {
	var eagerKeys []int
	for j := range specs {
		if specs[j].keyDim < 0 {
			continue
		}
		if specs[j].eager {
			eagerKeys = append(eagerKeys, j)
		} else {
			vec := batch.Cols[j]
			for _, row := range rows {
				vec.AppendRaw(row)
			}
		}
	}
	if len(eagerKeys) == 0 {
		return nil
	}
	for _, row := range rows {
		vals, err := r.codec.decodeRowkeyInto(*keyScratch, row)
		if err != nil {
			return err
		}
		*keyScratch = vals
		for _, j := range eagerKeys {
			if err := batch.Cols[j].Append(vals[specs[j].keyDim]); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendDecoded decodes one column's raw values (nil = NULL) into an eager
// vector. The primitive coder decodes straight into the typed arrays; other
// coders box through FieldCoder.Decode.
func (r *HBaseRelation) appendDecoded(vec *plan.Vector, vals [][]byte, s *vecColSpec) error {
	if _, prim := r.coder.(PrimitiveCoder); prim {
		switch vec.Kind {
		case plan.KindInt64:
			for _, raw := range vals {
				if raw == nil {
					vec.AppendNull()
					continue
				}
				x, err := decodeIntAs(raw, s.typ)
				if err != nil {
					return fmt.Errorf("core: decode %s: %w", s.name, err)
				}
				vec.AppendInt64(x)
			}
			return nil
		case plan.KindFloat64:
			for _, raw := range vals {
				if raw == nil {
					vec.AppendNull()
					continue
				}
				var f float64
				var err error
				if s.typ == plan.TypeFloat32 {
					var f32 float32
					f32, err = bytesutil.DecodeFloat32(raw)
					f = float64(f32)
				} else {
					f, err = bytesutil.DecodeFloat64(raw)
				}
				if err != nil {
					return fmt.Errorf("core: decode %s: %w", s.name, err)
				}
				vec.AppendFloat64(f)
			}
			return nil
		case plan.KindString:
			for _, raw := range vals {
				if raw == nil {
					vec.AppendNull()
					continue
				}
				vec.AppendString(string(raw))
			}
			return nil
		}
	}
	for _, raw := range vals {
		if raw == nil {
			vec.AppendNull()
			continue
		}
		v, err := r.coder.Decode(raw, s.typ)
		if err != nil {
			return fmt.Errorf("core: decode %s: %w", s.name, err)
		}
		if err := vec.Append(v); err != nil {
			return err
		}
	}
	return nil
}

// decodeIntAs decodes a primitive-coded integer-family value to int64.
func decodeIntAs(raw []byte, t plan.DataType) (int64, error) {
	switch t {
	case plan.TypeInt8:
		v, err := bytesutil.DecodeInt8(raw)
		return int64(v), err
	case plan.TypeInt16:
		v, err := bytesutil.DecodeInt16(raw)
		return int64(v), err
	case plan.TypeInt32:
		v, err := bytesutil.DecodeInt32(raw)
		return int64(v), err
	}
	return bytesutil.DecodeInt64(raw)
}
