package tpcds

import "fmt"

// q39CoV is the coefficient-of-variation expression at the heart of TPC-DS
// q39: stdev/mean guarded against empty groups.
const q39CoV = `CASE WHEN avg(inv_quantity_on_hand) = 0 THEN 0
        ELSE stddev_samp(inv_quantity_on_hand) / avg(inv_quantity_on_hand) END`

// q39Month builds the per-month inventory-variance subquery of q39: the
// four-way join of inventory, item, warehouse, and date_dim the paper
// highlights ("TPC-DS query q39a joins four tables").
func q39Month(year, moy int, minCov float64) string {
	// The generator keys inventory by date_sk, and month m of 2001 spans
	// date_sk (m-1)*30+1 .. m*30 — so the query states the month window on
	// the row key as well as on date_dim. The paper's §VI-A.1 makes
	// exactly this point: partition pruning only engages when the WHERE
	// clause is written against the first rowkey dimension.
	lo, hi := (moy-1)*30+1, moy*30
	return fmt.Sprintf(`
    SELECT w_warehouse_sk AS w, i_item_sk AS i,
           avg(inv_quantity_on_hand) AS qmean,
           %s AS qcov
    FROM inventory
    JOIN item ON inv_item_sk = i_item_sk
    JOIN warehouse ON inv_warehouse_sk = w_warehouse_sk
    JOIN date_dim ON inv_date_sk = d_date_sk
    WHERE inv_date_sk BETWEEN %d AND %d AND d_year = %d AND d_moy = %d
    GROUP BY w_warehouse_sk, i_item_sk
    HAVING %s > %g`, q39CoV, lo, hi, year, moy, q39CoV, minCov)
}

// Q39a is the restatement of TPC-DS q39a over the generated schema: items
// whose inventory level is unstable (CoV > 1) in two consecutive months.
func Q39a() string { return q39(1.0) }

// Q39b is q39a with the tighter variance threshold (CoV > 1.5), the second
// query variant the paper evaluates.
func Q39b() string { return q39(1.5) }

func q39(minCov float64) string {
	return fmt.Sprintf(`
SELECT inv1.w, inv1.i, inv1.qmean, inv1.qcov, inv2.qmean, inv2.qcov
FROM (%s) inv1
JOIN (%s) inv2 ON inv1.w = inv2.w AND inv1.i = inv2.i
ORDER BY inv1.w, inv1.i`, q39Month(2001, 1, minCov), q39Month(2001, 2, minCov))
}

// Q38 is the restatement of TPC-DS q38 over the generated schema:
// customers active in BOTH sales channels during a month-sequence window.
// (The original intersects store, catalog, and web; the generator carries
// two channels, so the INTERSECT is restated as a join of two DISTINCT
// customer sets — the same scan-dedup-intersect shape, one channel
// fewer.) month_seq 1200..1201 = months 1..2 of 2001 = date_sk 1..60; the
// rowkey restatements let SHC prune both fact tables' regions.
func Q38() string {
	return `
SELECT count(*) AS hot_customers FROM (
    SELECT DISTINCT ss_customer_sk AS cust
    FROM store_sales
    JOIN date_dim ON ss_sold_date_sk = d_date_sk
    WHERE ss_sold_date_sk BETWEEN 1 AND 60 AND d_month_seq BETWEEN 1200 AND 1201
) s JOIN (
    SELECT DISTINCT ws_customer_sk AS cust
    FROM web_sales
    JOIN date_dim ON ws_sold_date_sk = d_date_sk
    WHERE ws_sold_date_sk BETWEEN 1 AND 60 AND d_month_seq BETWEEN 1200 AND 1201
) w ON s.cust = w.cust`
}

// PointLookup returns a selective single-row query used by the examples
// and microbenchmarks.
func PointLookup(itemSk int) string {
	return fmt.Sprintf("SELECT i_item_id, i_price FROM item WHERE i_item_sk = %d", itemSk)
}
