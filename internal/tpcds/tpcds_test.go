package tpcds

import (
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/core"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 1, Seed: 7})
	b := Generate(Config{Scale: 1, Seed: 7})
	if len(a.Inventory) != len(b.Inventory) || len(a.Inventory) == 0 {
		t.Fatalf("inventory sizes %d vs %d", len(a.Inventory), len(b.Inventory))
	}
	for i := range a.Inventory {
		for j := range a.Inventory[i] {
			if a.Inventory[i][j] != b.Inventory[i][j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	c := Generate(Config{Scale: 1, Seed: 8})
	same := true
	for i := range a.Inventory {
		if a.Inventory[i][3] != c.Inventory[i][3] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := Generate(Config{Scale: 1})
	big := Generate(Config{Scale: 3})
	if len(big.Inventory) != 3*len(small.Inventory) {
		t.Errorf("inventory scaling: %d vs %d", len(big.Inventory), len(small.Inventory))
	}
	if len(big.StoreSales) != 3*len(small.StoreSales) {
		t.Errorf("sales scaling: %d vs %d", len(big.StoreSales), len(small.StoreSales))
	}
	if len(big.Warehouse) != len(small.Warehouse) {
		t.Error("warehouse count should not scale")
	}
}

func TestInventoryKeysUnique(t *testing.T) {
	d := Generate(Config{Scale: 2})
	seen := make(map[[3]int32]bool)
	for _, r := range d.Inventory {
		k := [3]int32{r[0].(int32), r[1].(int32), r[2].(int32)}
		if seen[k] {
			t.Fatalf("duplicate inventory key %v", k)
		}
		seen[k] = true
	}
}

func TestDateDimCoversQ39Months(t *testing.T) {
	d := Generate(Config{})
	months := make(map[int32]int)
	for _, r := range d.DateDim {
		if r[4].(int32) == 2001 {
			months[r[3].(int32)]++
		}
	}
	if months[1] == 0 || months[2] == 0 {
		t.Errorf("q39 needs months 1 and 2 of 2001: %v", months)
	}
}

func TestCatalogsParseAndMatchRows(t *testing.T) {
	d := Generate(Config{})
	for _, table := range TableNames {
		doc, err := Catalog(table, "")
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		cat, err := core.ParseCatalog(doc)
		if err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		rows := d.Rows(table)
		if len(rows) == 0 {
			t.Fatalf("%s: no rows", table)
		}
		if got, want := len(rows[0]), len(cat.Schema()); got != want {
			t.Errorf("%s: row width %d != schema width %d (%s)", table, got, want, cat.Schema())
		}
	}
	if _, err := Catalog("nope", ""); err == nil {
		t.Error("unknown table must fail")
	}
	for _, coder := range []string{"PrimitiveType", "Phoenix", "Avro"} {
		doc, err := Catalog("item", coder)
		if err != nil || !strings.Contains(doc, coder) {
			t.Errorf("coder %s: %v", coder, err)
		}
	}
}

func TestQueriesWellFormed(t *testing.T) {
	for name, q := range map[string]string{"q39a": Q39a(), "q39b": Q39b(), "q38": Q38(), "point": PointLookup(5)} {
		if !strings.Contains(strings.ToUpper(q), "SELECT") {
			t.Errorf("%s: %q", name, q)
		}
	}
	if Q39a() == Q39b() {
		t.Error("q39a and q39b must differ (variance threshold)")
	}
}
