// Package tpcds generates the scaled-down TPC-DS data the experiments run
// on (paper §VII: "We used TPC-DS to test the performance"). It produces
// the six tables the evaluated queries touch — warehouse, item, date_dim,
// inventory (q39a/q39b), store_sales and web_sales (q38) — with
// deterministic, seedable content, plus the SHC catalogs mapping each
// table into HBase.
//
// The paper runs on 5–30 GB; on one machine the generator exposes a Scale
// knob that multiplies row counts instead, preserving every relative
// comparison the experiments make.
package tpcds

import (
	"fmt"
	"math/rand"

	"github.com/shc-go/shc/internal/plan"
)

// Config sizes the dataset.
type Config struct {
	// Scale multiplies row counts; Scale 1 ≈ 5k inventory rows. The
	// figures sweep Scale the way the paper sweeps gigabytes.
	Scale int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Sizing derived from Scale.
func (c Config) warehouses() int { return 5 }
func (c Config) items() int      { return 50 * c.Scale }
func (c Config) dates() int      { return 360 } // twelve months of 2001
func (c Config) invRows() int    { return 12000 * c.Scale }
func (c Config) salesRows() int  { return 8000 * c.Scale }
func (c Config) webRows() int    { return 5000 * c.Scale }
func (c Config) customers() int  { return 200 * c.Scale }

// Data holds the generated tables. Row layouts follow the catalogs below
// (rowkey dimensions first, then data columns sorted by name).
type Data struct {
	Warehouse  []plan.Row
	Item       []plan.Row
	DateDim    []plan.Row
	Inventory  []plan.Row
	StoreSales []plan.Row
	WebSales   []plan.Row
}

// TableNames lists the generated tables in load order.
var TableNames = []string{"warehouse", "item", "date_dim", "inventory", "store_sales", "web_sales"}

// Rows returns the rows of the named table.
func (d *Data) Rows(table string) []plan.Row {
	switch table {
	case "warehouse":
		return d.Warehouse
	case "item":
		return d.Item
	case "date_dim":
		return d.DateDim
	case "inventory":
		return d.Inventory
	case "store_sales":
		return d.StoreSales
	case "web_sales":
		return d.WebSales
	}
	return nil
}

// Generate produces the dataset for cfg.
func Generate(cfg Config) *Data {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{}

	// warehouse(w_warehouse_sk; w_name, w_state)
	for i := 1; i <= cfg.warehouses(); i++ {
		d.Warehouse = append(d.Warehouse, plan.Row{
			int32(i),
			fmt.Sprintf("Warehouse-%d", i),
			[]string{"CA", "NY", "TX", "WA", "IL"}[(i-1)%5],
		})
	}
	// item(i_item_sk; i_category, i_item_id, i_price)
	cats := []string{"Books", "Electronics", "Home", "Music", "Sports"}
	for i := 1; i <= cfg.items(); i++ {
		d.Item = append(d.Item, plan.Row{
			int32(i),
			cats[rng.Intn(len(cats))],
			fmt.Sprintf("ITEM%06d", i),
			1 + rng.Float64()*99,
		})
	}
	// date_dim(d_date_sk; d_date, d_month_seq, d_moy, d_year) — twelve
	// months of 2001, 30 days each, month_seq on TPC-DS's 1200 epoch.
	for i := 1; i <= cfg.dates(); i++ {
		moy := (i-1)/30 + 1
		d.DateDim = append(d.DateDim, plan.Row{
			int32(i),
			fmt.Sprintf("2001-%02d-%02d", moy, (i-1)%30+1),
			int32(1200 + moy - 1),
			int32(moy),
			int32(2001),
		})
	}
	// inventory(inv_date_sk:inv_item_sk:inv_warehouse_sk; inv_quantity_on_hand)
	// Quantities follow a per-(item,warehouse) base level with noise so
	// q39's coefficient-of-variation has realistic spread.
	base := make(map[[2]int32]float64)
	seen := make(map[[3]int32]bool)
	for len(d.Inventory) < cfg.invRows() {
		date := int32(rng.Intn(cfg.dates()) + 1)
		item := int32(rng.Intn(cfg.items()) + 1)
		wh := int32(rng.Intn(cfg.warehouses()) + 1)
		key := [3]int32{date, item, wh}
		if seen[key] {
			continue
		}
		seen[key] = true
		bk := [2]int32{item, wh}
		b, ok := base[bk]
		if !ok {
			b = 50 + rng.Float64()*400
			base[bk] = b
		}
		// Heavy-tailed stock levels: mostly near-empty shelves with
		// occasional bulk restocks, so q39's coefficient of variation has
		// groups on both sides of the 1.0 and 1.5 thresholds.
		var qty int32
		if rng.Float64() < 0.7 {
			qty = int32(b * rng.Float64() * 0.2)
		} else {
			qty = int32(b * rng.Float64() * 5)
		}
		d.Inventory = append(d.Inventory, plan.Row{date, item, wh, qty})
	}
	// store_sales(ss_sold_date_sk:ss_ticket_number; ss_customer_sk,
	// ss_item_sk, ss_quantity, ss_sales_price)
	for i := 1; i <= cfg.salesRows(); i++ {
		d.StoreSales = append(d.StoreSales, plan.Row{
			int32(rng.Intn(cfg.dates()) + 1),
			int64(i),
			int32(rng.Intn(cfg.customers()) + 1),
			int32(rng.Intn(cfg.items()) + 1),
			int32(1 + rng.Intn(20)),
			1 + rng.Float64()*199,
		})
	}
	// web_sales(ws_sold_date_sk:ws_order_number; ws_customer_sk,
	// ws_item_sk, ws_sales_price) — the second channel q38 intersects.
	// Web shoppers skew toward the lower customer ids so the store∩web
	// intersection is a proper subset of either channel.
	for i := 1; i <= cfg.webRows(); i++ {
		d.WebSales = append(d.WebSales, plan.Row{
			int32(rng.Intn(cfg.dates()) + 1),
			int64(i),
			int32(rng.Intn(cfg.customers()*3/4) + 1),
			int32(rng.Intn(cfg.items()) + 1),
			1 + rng.Float64()*149,
		})
	}
	return d
}

// Catalog returns the SHC catalog JSON for a table with the given coder
// ("PrimitiveType", "Phoenix", or "Avro"; empty defaults to PrimitiveType).
func Catalog(table, coder string) (string, error) {
	if coder == "" {
		coder = "PrimitiveType"
	}
	switch table {
	case "warehouse":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"warehouse","tableCoder":%q},
  "rowkey":"sk",
  "columns":{
    "w_warehouse_sk":{"cf":"rowkey","col":"sk","type":"int"},
    "w_name":{"cf":"w","col":"n","type":"string"},
    "w_state":{"cf":"w","col":"s","type":"string"}
  }
}`, coder), nil
	case "item":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"item","tableCoder":%q},
  "rowkey":"sk",
  "columns":{
    "i_item_sk":{"cf":"rowkey","col":"sk","type":"int"},
    "i_category":{"cf":"i","col":"c","type":"string"},
    "i_item_id":{"cf":"i","col":"id","type":"string"},
    "i_price":{"cf":"i","col":"p","type":"double"}
  }
}`, coder), nil
	case "date_dim":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"date_dim","tableCoder":%q},
  "rowkey":"sk",
  "columns":{
    "d_date_sk":{"cf":"rowkey","col":"sk","type":"int"},
    "d_date":{"cf":"d","col":"dt","type":"string"},
    "d_month_seq":{"cf":"d","col":"ms","type":"int"},
    "d_moy":{"cf":"d","col":"m","type":"int"},
    "d_year":{"cf":"d","col":"y","type":"int"}
  }
}`, coder), nil
	case "inventory":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"inventory","tableCoder":%q},
  "rowkey":"d:i:w",
  "columns":{
    "inv_date_sk":{"cf":"rowkey","col":"d","type":"int"},
    "inv_item_sk":{"cf":"rowkey","col":"i","type":"int"},
    "inv_warehouse_sk":{"cf":"rowkey","col":"w","type":"int"},
    "inv_quantity_on_hand":{"cf":"inv","col":"q","type":"int"}
  }
}`, coder), nil
	case "web_sales":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"web_sales","tableCoder":%q},
  "rowkey":"d:o",
  "columns":{
    "ws_sold_date_sk":{"cf":"rowkey","col":"d","type":"int"},
    "ws_order_number":{"cf":"rowkey","col":"o","type":"bigint"},
    "ws_customer_sk":{"cf":"w","col":"c","type":"int"},
    "ws_item_sk":{"cf":"w","col":"i","type":"int"},
    "ws_sales_price":{"cf":"w","col":"p","type":"double"}
  }
}`, coder), nil
	case "store_sales":
		return fmt.Sprintf(`{
  "table":{"namespace":"default","name":"store_sales","tableCoder":%q},
  "rowkey":"d:t",
  "columns":{
    "ss_sold_date_sk":{"cf":"rowkey","col":"d","type":"int"},
    "ss_ticket_number":{"cf":"rowkey","col":"t","type":"bigint"},
    "ss_customer_sk":{"cf":"s","col":"c","type":"int"},
    "ss_item_sk":{"cf":"s","col":"i","type":"int"},
    "ss_quantity":{"cf":"s","col":"q","type":"int"},
    "ss_sales_price":{"cf":"s","col":"p","type":"double"}
  }
}`, coder), nil
	}
	return "", fmt.Errorf("tpcds: unknown table %q", table)
}
