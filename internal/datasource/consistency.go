package datasource

import "context"

// Consistency is the engine-facing read-consistency level a query runs at.
// It mirrors the storage layer's notion without importing it, so the engine
// depends only on the datasource contract: connectors that support replica
// reads translate it to their own wire-level option.
type Consistency int

const (
	// ConsistencyStrong reads only primary copies; results are never stale.
	ConsistencyStrong Consistency = iota
	// ConsistencyTimeline allows possibly-stale replica reads when a
	// primary is unreachable, trading bounded staleness for availability.
	ConsistencyTimeline
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	if c == ConsistencyTimeline {
		return "timeline"
	}
	return "strong"
}

type consistencyKey struct{}

// WithConsistency returns ctx carrying the query's read-consistency level.
func WithConsistency(ctx context.Context, c Consistency) context.Context {
	return context.WithValue(ctx, consistencyKey{}, c)
}

// ConsistencyFromContext reports the context's read-consistency level
// (ConsistencyStrong when unset).
func ConsistencyFromContext(ctx context.Context) Consistency {
	if ctx == nil {
		return ConsistencyStrong
	}
	c, _ := ctx.Value(consistencyKey{}).(Consistency)
	return c
}
