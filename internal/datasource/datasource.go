// Package datasource is the plug-in seam between the query engine and
// external storage — the analogue of Spark's Data Sources API (SPARK-3247,
// paper §III-C). The engine hands a relation the columns it needs and the
// source-level filters it derived; the relation answers with partitions
// carrying preferred hosts for locality scheduling and declares, through
// UnhandledFilters, which predicates the engine must still re-apply. SHC's
// HBase relation and the generic baseline both implement exactly these
// interfaces — the engine contains no HBase-specific code, mirroring the
// paper's "least modification in Spark SQL itself".
package datasource

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/shc-go/shc/internal/plan"
)

// Filter is a source-level predicate description, mirroring
// org.apache.spark.sql.sources.Filter. Values are already coerced to the
// column's catalog type.
type Filter interface {
	// References lists the columns the filter touches.
	References() []string
	// String renders the filter.
	String() string
}

// EqualTo keeps rows where Column = Value.
type EqualTo struct {
	Column string
	Value  any
}

// References implements Filter.
func (f EqualTo) References() []string { return []string{f.Column} }

// String implements Filter.
func (f EqualTo) String() string { return fmt.Sprintf("%s = %v", f.Column, f.Value) }

// NotEqual keeps rows where Column != Value (NULLs drop, SQL-style).
type NotEqual struct {
	Column string
	Value  any
}

// References implements Filter.
func (f NotEqual) References() []string { return []string{f.Column} }

// String implements Filter.
func (f NotEqual) String() string { return fmt.Sprintf("%s != %v", f.Column, f.Value) }

// GreaterThan keeps rows where Column > Value.
type GreaterThan struct {
	Column string
	Value  any
}

// References implements Filter.
func (f GreaterThan) References() []string { return []string{f.Column} }

// String implements Filter.
func (f GreaterThan) String() string { return fmt.Sprintf("%s > %v", f.Column, f.Value) }

// GreaterThanOrEqual keeps rows where Column >= Value.
type GreaterThanOrEqual struct {
	Column string
	Value  any
}

// References implements Filter.
func (f GreaterThanOrEqual) References() []string { return []string{f.Column} }

// String implements Filter.
func (f GreaterThanOrEqual) String() string { return fmt.Sprintf("%s >= %v", f.Column, f.Value) }

// LessThan keeps rows where Column < Value.
type LessThan struct {
	Column string
	Value  any
}

// References implements Filter.
func (f LessThan) References() []string { return []string{f.Column} }

// String implements Filter.
func (f LessThan) String() string { return fmt.Sprintf("%s < %v", f.Column, f.Value) }

// LessThanOrEqual keeps rows where Column <= Value.
type LessThanOrEqual struct {
	Column string
	Value  any
}

// References implements Filter.
func (f LessThanOrEqual) References() []string { return []string{f.Column} }

// String implements Filter.
func (f LessThanOrEqual) String() string { return fmt.Sprintf("%s <= %v", f.Column, f.Value) }

// In keeps rows where Column is one of Values.
type In struct {
	Column string
	Values []any
}

// References implements Filter.
func (f In) References() []string { return []string{f.Column} }

// String implements Filter.
func (f In) String() string {
	parts := make([]string, len(f.Values))
	for i, v := range f.Values {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("%s IN (%s)", f.Column, strings.Join(parts, ", "))
}

// NotIn keeps rows where Column is none of Values — the predicate the
// paper's rule-based pushdown deliberately leaves to the engine (§VI-A.3).
type NotIn struct {
	Column string
	Values []any
}

// References implements Filter.
func (f NotIn) References() []string { return []string{f.Column} }

// String implements Filter.
func (f NotIn) String() string {
	parts := make([]string, len(f.Values))
	for i, v := range f.Values {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("%s NOT IN (%s)", f.Column, strings.Join(parts, ", "))
}

// StringStartsWith keeps rows where the string Column begins with Prefix.
type StringStartsWith struct {
	Column string
	Prefix string
}

// References implements Filter.
func (f StringStartsWith) References() []string { return []string{f.Column} }

// String implements Filter.
func (f StringStartsWith) String() string { return fmt.Sprintf("%s LIKE %q%%", f.Column, f.Prefix) }

// AndFilter keeps rows passing both children.
type AndFilter struct {
	Left, Right Filter
}

// References implements Filter.
func (f AndFilter) References() []string {
	return append(f.Left.References(), f.Right.References()...)
}

// String implements Filter.
func (f AndFilter) String() string { return fmt.Sprintf("(%s AND %s)", f.Left, f.Right) }

// OrFilter keeps rows passing either child.
type OrFilter struct {
	Left, Right Filter
}

// References implements Filter.
func (f OrFilter) References() []string {
	return append(f.Left.References(), f.Right.References()...)
}

// String implements Filter.
func (f OrFilter) String() string { return fmt.Sprintf("(%s OR %s)", f.Left, f.Right) }

// Partition is one independently computable slice of a relation's data.
// The scheduler places the compute where PreferredHost points when an
// executor lives there — SHC's data-locality optimization (paper §VI-A.2).
type Partition interface {
	// Index is the partition's ordinal within the scan.
	Index() int
	// PreferredHost names the host holding the data, or "" when any host
	// will do.
	PreferredHost() string
	// Compute materializes the partition's rows in the scan's projected
	// column order. ctx bounds the read: sources abandon RPCs, retries, and
	// backoff sleeps as soon as it is done, so a cancelled query releases
	// its executor slots promptly.
	Compute(ctx context.Context) ([]plan.Row, error)
}

// ErrStopBatches is the sentinel a ComputeBatches yield callback returns to
// end the stream early without error — how a fused LIMIT tells the source to
// stop fetching once enough rows arrived.
var ErrStopBatches = errors.New("datasource: stop batch stream")

// BatchOptions tunes a streaming partition read.
type BatchOptions struct {
	// BatchSize bounds the rows per yielded batch; 0 lets the source pick.
	BatchSize int
	// LimitHint caps the rows the consumer will take from this partition
	// (0 = unlimited). Callers may only set it when every remaining
	// predicate is already evaluated inside the source, so that the first
	// LimitHint rows are exactly the rows the query keeps.
	LimitHint int
	// EagerColumns lists the positions (in the scan's projected column
	// order) that the consumer reads for every row — typically the filter
	// and aggregate inputs. A vectorized source decodes these into typed
	// vectors up front and may leave the rest lazy, decoding only the
	// positions that survive filtering (late materialization). nil means
	// "decode everything eagerly".
	EagerColumns []int
}

// BatchScan is an optional Partition capability: compute the partition's
// rows as a stream of bounded batches instead of one materialized slice.
// yield is called with consecutive batches in row order; if it returns
// ErrStopBatches the stream ends and ComputeBatches returns nil, and any
// other error aborts the stream and is returned as-is. The batch slice is
// only valid for the duration of the yield call (sources may reuse its
// backing array); the rows it holds stay valid, so consumers keep rows by
// copying them out of the slice, never by retaining the slice itself.
type BatchScan interface {
	ComputeBatches(ctx context.Context, opts BatchOptions, yield func([]plan.Row) error) error
}

// StreamPartition streams p's rows through yield, using the BatchScan fast
// path when the partition implements it and falling back to a single
// materialized batch otherwise — the compatibility shim that lets the
// pipelined executor run over any Partition.
func StreamPartition(ctx context.Context, p Partition, opts BatchOptions, yield func([]plan.Row) error) error {
	if bs, ok := p.(BatchScan); ok {
		return bs.ComputeBatches(ctx, opts, yield)
	}
	rows, err := p.Compute(ctx)
	if err != nil {
		return err
	}
	if opts.LimitHint > 0 && len(rows) > opts.LimitHint {
		rows = rows[:opts.LimitHint]
	}
	if len(rows) == 0 {
		return nil
	}
	if err := yield(rows); err != nil && !errors.Is(err, ErrStopBatches) {
		return err
	}
	return nil
}

// VectorScan is an optional Partition capability: compute the partition as
// a stream of column batches — typed vectors with null bitmaps — instead of
// row slices. The batch holds the scan's projected columns in order, and
// the same ErrStopBatches/LimitHint contract as BatchScan applies. The
// batch (vectors included) is only valid for the duration of the yield
// call: sources reuse and re-fill it, so consumers materialize whatever
// they keep before returning.
type VectorScan interface {
	ComputeVectors(ctx context.Context, opts BatchOptions, yield func(*plan.Batch) error) error
}

// StreamPartitionVectors streams p's rows as column batches, using the
// VectorScan fast path when the partition implements it and transposing the
// row stream into a reused batch otherwise. schema describes the scan's
// projected columns.
func StreamPartitionVectors(ctx context.Context, p Partition, schema plan.Schema, opts BatchOptions, yield func(*plan.Batch) error) error {
	if vs, ok := p.(VectorScan); ok {
		return vs.ComputeVectors(ctx, opts, yield)
	}
	batch := plan.NewBatch(schema)
	return StreamPartition(ctx, p, opts, func(rows []plan.Row) error {
		batch.Reset()
		for _, r := range rows {
			if err := batch.AppendRow(r); err != nil {
				return err
			}
		}
		return yield(batch)
	})
}

// Relation is a table provided by an external source.
type Relation interface {
	// Name identifies the relation for plans and error messages.
	Name() string
	// Schema describes the relational view of the source.
	Schema() plan.Schema
}

// PrunedFilteredScan is a relation that accepts column pruning and filter
// pushdown, Spark's PrunedFilteredScan contract.
type PrunedFilteredScan interface {
	Relation
	// BuildScan returns the partitions of a scan restricted to the
	// required columns, with the given filters pushed as far into the
	// source as the relation can manage.
	BuildScan(requiredColumns []string, filters []Filter) ([]Partition, error)
	// UnhandledFilters reports the subset of filters the relation does NOT
	// fully evaluate; the engine re-applies exactly those (and skips
	// re-filtering for the rest) — Spark's unhandledFilters API, which the
	// paper calls out as an effective optimization (§VI-A.3).
	UnhandledFilters(filters []Filter) []Filter
}

// Statistics is an optional relation capability: sources that can estimate
// their cardinality enable the engine's cost-based decisions (join-side
// selection), the "cost-based optimization mechanisms" the paper credits
// Catalyst with (§I).
type Statistics interface {
	// EstimatedRowCount returns an approximate row count and whether an
	// estimate is available.
	EstimatedRowCount() (int64, bool)
}

// InsertableRelation is a relation that accepts writes — the DataFrame
// write path (paper Code 2).
type InsertableRelation interface {
	Relation
	// Insert appends the rows, whose layout matches Schema.
	Insert(rows []plan.Row) error
}

// BulkLoadableRelation is an optional write capability: relations whose
// store offers a bulk-load path (HBase's completebulkload) accept rows as
// pre-sorted store files that bypass the normal write pipeline — no WAL, no
// MemStore, no flush — for high-volume initial loads.
type BulkLoadableRelation interface {
	InsertableRelation
	// BulkLoad writes the rows through the store's bulk-load path.
	BulkLoad(rows []plan.Row) error
}

// EvalFilter applies a source filter description to a row (used by sources
// without native filtering, and by tests as the reference semantics).
func EvalFilter(f Filter, schema plan.Schema, row plan.Row) (bool, error) {
	switch x := f.(type) {
	case EqualTo:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c == 0 })
	case NotEqual:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c != 0 })
	case GreaterThan:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c > 0 })
	case GreaterThanOrEqual:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c >= 0 })
	case LessThan:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c < 0 })
	case LessThanOrEqual:
		return cmpFilter(schema, row, x.Column, x.Value, func(c int) bool { return c <= 0 })
	case In:
		for _, v := range x.Values {
			ok, err := cmpFilter(schema, row, x.Column, v, func(c int) bool { return c == 0 })
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case NotIn:
		ok, err := EvalFilter(In{Column: x.Column, Values: x.Values}, schema, row)
		if err != nil {
			return false, err
		}
		i := schema.IndexOf(x.Column)
		if i < 0 || row[i] == nil {
			return false, nil
		}
		return !ok, nil
	case StringStartsWith:
		i := schema.IndexOf(x.Column)
		if i < 0 {
			return false, fmt.Errorf("datasource: column %q not in schema", x.Column)
		}
		s, ok := row[i].(string)
		return ok && strings.HasPrefix(s, x.Prefix), nil
	case AndFilter:
		l, err := EvalFilter(x.Left, schema, row)
		if err != nil || !l {
			return false, err
		}
		return EvalFilter(x.Right, schema, row)
	case OrFilter:
		l, err := EvalFilter(x.Left, schema, row)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return EvalFilter(x.Right, schema, row)
	}
	return false, fmt.Errorf("datasource: unknown filter %T", f)
}

func cmpFilter(schema plan.Schema, row plan.Row, col string, val any, ok func(int) bool) (bool, error) {
	i := schema.IndexOf(col)
	if i < 0 {
		return false, fmt.Errorf("datasource: column %q not in schema", col)
	}
	if row[i] == nil || val == nil {
		return false, nil
	}
	c, err := plan.Compare(row[i], val)
	if err != nil {
		return false, err
	}
	return ok(c), nil
}
