package datasource

import (
	"context"
	"testing"

	"github.com/shc-go/shc/internal/plan"
)

func dsSchema() plan.Schema {
	return plan.Schema{
		{Name: "name", Type: plan.TypeString},
		{Name: "age", Type: plan.TypeInt32},
		{Name: "score", Type: plan.TypeFloat64},
	}
}

func TestEvalFilterComparisons(t *testing.T) {
	s := dsSchema()
	row := plan.Row{"bob", int32(42), 3.5}
	cases := []struct {
		f    Filter
		want bool
	}{
		{EqualTo{Column: "age", Value: int32(42)}, true},
		{EqualTo{Column: "age", Value: int32(1)}, false},
		{NotEqual{Column: "age", Value: int32(1)}, true},
		{GreaterThan{Column: "age", Value: int32(40)}, true},
		{GreaterThanOrEqual{Column: "age", Value: int32(42)}, true},
		{LessThan{Column: "score", Value: 4.0}, true},
		{LessThanOrEqual{Column: "score", Value: 3.5}, true},
		{In{Column: "name", Values: []any{"alice", "bob"}}, true},
		{In{Column: "name", Values: []any{"alice"}}, false},
		{NotIn{Column: "name", Values: []any{"alice"}}, true},
		{NotIn{Column: "name", Values: []any{"bob"}}, false},
		{StringStartsWith{Column: "name", Prefix: "bo"}, true},
		{StringStartsWith{Column: "name", Prefix: "xx"}, false},
		{AndFilter{Left: EqualTo{Column: "name", Value: "bob"}, Right: GreaterThan{Column: "age", Value: int32(1)}}, true},
		{AndFilter{Left: EqualTo{Column: "name", Value: "bob"}, Right: GreaterThan{Column: "age", Value: int32(99)}}, false},
		{OrFilter{Left: EqualTo{Column: "name", Value: "zed"}, Right: GreaterThan{Column: "age", Value: int32(1)}}, true},
		{OrFilter{Left: EqualTo{Column: "name", Value: "zed"}, Right: GreaterThan{Column: "age", Value: int32(99)}}, false},
	}
	for _, c := range cases {
		got, err := EvalFilter(c.f, s, row)
		if err != nil {
			t.Errorf("EvalFilter(%s): %v", c.f, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalFilter(%s) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestEvalFilterNulls(t *testing.T) {
	s := dsSchema()
	row := plan.Row{nil, nil, 1.0}
	for _, f := range []Filter{
		EqualTo{Column: "age", Value: int32(1)},
		NotEqual{Column: "age", Value: int32(1)},
		GreaterThan{Column: "age", Value: int32(1)},
		NotIn{Column: "name", Values: []any{"x"}},
	} {
		got, err := EvalFilter(f, s, row)
		if err != nil || got {
			t.Errorf("EvalFilter(%s) on NULL = %v, %v (want false, nil)", f, got, err)
		}
	}
}

func TestEvalFilterUnknownColumn(t *testing.T) {
	if _, err := EvalFilter(EqualTo{Column: "ghost", Value: 1}, dsSchema(), plan.Row{"a", int32(1), 1.0}); err == nil {
		t.Error("unknown column must error")
	}
}

func TestFilterReferencesAndStrings(t *testing.T) {
	fs := []Filter{
		EqualTo{Column: "a", Value: 1},
		NotEqual{Column: "a", Value: 1},
		GreaterThan{Column: "a", Value: 1},
		GreaterThanOrEqual{Column: "a", Value: 1},
		LessThan{Column: "a", Value: 1},
		LessThanOrEqual{Column: "a", Value: 1},
		In{Column: "a", Values: []any{1, 2}},
		NotIn{Column: "a", Values: []any{1}},
		StringStartsWith{Column: "a", Prefix: "p"},
		AndFilter{Left: EqualTo{Column: "a", Value: 1}, Right: EqualTo{Column: "b", Value: 2}},
		OrFilter{Left: EqualTo{Column: "a", Value: 1}, Right: EqualTo{Column: "b", Value: 2}},
	}
	for _, f := range fs {
		if len(f.References()) == 0 {
			t.Errorf("%T has no references", f)
		}
		if f.String() == "" {
			t.Errorf("%T has no string", f)
		}
	}
}

func TestMemRelationScanProjectionAndFilter(t *testing.T) {
	m := NewMemRelation("t", dsSchema(), 3)
	rows := []plan.Row{
		{"a", int32(10), 1.0},
		{"b", int32(20), 2.0},
		{"c", int32(30), 3.0},
		{"d", int32(40), 4.0},
	}
	if err := m.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d", m.Count())
	}
	parts, err := m.BuildScan([]string{"name"}, []Filter{GreaterThan{Column: "age", Value: int32(15)}})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range parts {
		rs, err := p.Compute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if len(r) != 1 {
				t.Fatalf("projection width = %d", len(r))
			}
			got = append(got, r[0].(string))
		}
	}
	if len(got) != 3 {
		t.Errorf("filtered rows = %v", got)
	}
	if fs := m.UnhandledFilters([]Filter{EqualTo{Column: "age", Value: 1}}); fs != nil {
		t.Error("mem relation handles all filters")
	}
}

func TestMemRelationInsertWidthCheck(t *testing.T) {
	m := NewMemRelation("t", dsSchema(), 1)
	if err := m.Insert([]plan.Row{{"too", "wide", 1, 2}}); err == nil {
		t.Error("wrong-width insert must fail")
	}
}

func TestMemRelationScanUnknownColumn(t *testing.T) {
	m := NewMemRelation("t", dsSchema(), 1)
	if _, err := m.BuildScan([]string{"ghost"}, nil); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestMemRelationEmptyScan(t *testing.T) {
	m := NewMemRelation("t", dsSchema(), 4)
	parts, err := m.BuildScan([]string{"name"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Errorf("empty relation partitions = %d", len(parts))
	}
	rows, err := parts[0].Compute(context.Background())
	if err != nil || len(rows) != 0 {
		t.Errorf("empty scan = %v, %v", rows, err)
	}
}
