package datasource

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/plan"
)

// MemRelation is the reference in-memory data source: it supports pruned,
// filtered scans (handling every filter itself) and inserts. The examples
// use it as the stand-in for Hive tables living next to HBase clusters, and
// tests use it as the known-good source semantics.
type MemRelation struct {
	name       string
	schema     plan.Schema
	partitions int

	mu   sync.RWMutex
	rows []plan.Row
}

// NewMemRelation creates an empty in-memory table split into partitions
// chunks for scans (minimum 1).
func NewMemRelation(name string, schema plan.Schema, partitions int) *MemRelation {
	if partitions <= 0 {
		partitions = 1
	}
	return &MemRelation{name: name, schema: schema, partitions: partitions}
}

// Name implements Relation.
func (m *MemRelation) Name() string { return m.name }

// Schema implements Relation.
func (m *MemRelation) Schema() plan.Schema { return m.schema }

// Insert implements InsertableRelation.
func (m *MemRelation) Insert(rows []plan.Row) error {
	for _, r := range rows {
		if len(r) != len(m.schema) {
			return fmt.Errorf("datasource: row width %d != schema width %d", len(r), len(m.schema))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = append(m.rows, rows...)
	return nil
}

// Count reports the stored row count.
func (m *MemRelation) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows)
}

// EstimatedRowCount implements Statistics exactly.
func (m *MemRelation) EstimatedRowCount() (int64, bool) { return int64(m.Count()), true }

// BuildScan implements PrunedFilteredScan; the in-memory source evaluates
// every filter itself.
func (m *MemRelation) BuildScan(requiredColumns []string, filters []Filter) ([]Partition, error) {
	idx := make([]int, len(requiredColumns))
	for i, c := range requiredColumns {
		j := m.schema.IndexOf(c)
		if j < 0 {
			return nil, fmt.Errorf("datasource: %s has no column %q", m.name, c)
		}
		idx[i] = j
	}
	m.mu.RLock()
	rows := m.rows
	m.mu.RUnlock()

	n := m.partitions
	if n > len(rows) && len(rows) > 0 {
		n = len(rows)
	}
	if len(rows) == 0 {
		n = 1
	}
	parts := make([]Partition, n)
	chunk := (len(rows) + n - 1) / n
	for p := 0; p < n; p++ {
		lo := p * chunk
		hi := lo + chunk
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		parts[p] = &memPartition{
			rel: m, index: p, rows: rows[lo:hi], colIdx: idx, filters: filters,
		}
	}
	return parts, nil
}

// UnhandledFilters implements PrunedFilteredScan: none, the source handles
// everything it is given.
func (m *MemRelation) UnhandledFilters([]Filter) []Filter { return nil }

type memPartition struct {
	rel     *MemRelation
	index   int
	rows    []plan.Row
	colIdx  []int
	filters []Filter
}

// Index implements Partition.
func (p *memPartition) Index() int { return p.index }

// PreferredHost implements Partition; in-memory data has no locality.
func (p *memPartition) PreferredHost() string { return "" }

// Compute implements Partition.
func (p *memPartition) Compute(ctx context.Context) ([]plan.Row, error) {
	var out []plan.Row
	err := p.ComputeBatches(ctx, BatchOptions{}, func(batch []plan.Row) error {
		out = append(out, batch...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComputeBatches implements BatchScan: filter and project row-at-a-time,
// yielding bounded batches, so the engine's pipeline never holds more than
// one batch of this partition at once.
func (p *memPartition) ComputeBatches(ctx context.Context, opts BatchOptions, yield func([]plan.Row) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = 256
	}
	emitted := 0
	batch := make([]plan.Row, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := yield(batch)
		batch = batch[:0]
		return err
	}
	for _, r := range p.rows {
		keep := true
		for _, f := range p.filters {
			ok, err := EvalFilter(f, p.rel.schema, r)
			if err != nil {
				return err
			}
			if !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		nr := make(plan.Row, len(p.colIdx))
		for i, j := range p.colIdx {
			nr[i] = r[j]
		}
		batch = append(batch, nr)
		emitted++
		if opts.LimitHint > 0 && emitted >= opts.LimitHint {
			break
		}
		if len(batch) >= batchSize {
			if err := flush(); err != nil {
				if errors.Is(err, ErrStopBatches) {
					return nil
				}
				return err
			}
		}
	}
	if err := flush(); err != nil && !errors.Is(err, ErrStopBatches) {
		return err
	}
	return nil
}

// ComputeVectors implements VectorScan by transposing the filtered,
// projected row stream into one reused column batch — the in-memory source
// pays no decode cost, so eager vs lazy does not apply here.
func (p *memPartition) ComputeVectors(ctx context.Context, opts BatchOptions, yield func(*plan.Batch) error) error {
	schema := make(plan.Schema, len(p.colIdx))
	for i, j := range p.colIdx {
		schema[i] = p.rel.schema[j]
	}
	batch := plan.NewBatch(schema)
	return p.ComputeBatches(ctx, opts, func(rows []plan.Row) error {
		batch.Reset()
		for _, r := range rows {
			if err := batch.AppendRow(r); err != nil {
				return err
			}
		}
		return yield(batch)
	})
}
