package plan

import (
	"fmt"
	"strings"
)

// Relation is the minimal view the planner needs of a data source; the
// datasource package's Relation satisfies it. Keeping the dependency in
// this direction lets the optimizer stay source-agnostic.
type Relation interface {
	Name() string
	Schema() Schema
}

// LogicalPlan is a node in the logical operator tree.
type LogicalPlan interface {
	// Schema describes the node's output columns.
	Schema() Schema
	// Children returns the node's inputs.
	Children() []LogicalPlan
	// String renders one line for plan dumps.
	String() string
}

// ScanNode reads a relation. The optimizer fills Projection (column
// pruning) and Pushed (filter pushdown); predicates that could not be
// pushed remain in FilterNodes above the scan.
type ScanNode struct {
	Relation Relation
	// Alias qualifies output columns ("alias.col"); empty for bare names.
	Alias string
	// Projection lists the columns the scan must produce, in output
	// order; nil means every column.
	Projection []string
	// Pushed holds predicates the optimizer pushed into the source.
	Pushed []Expr
}

// Schema implements LogicalPlan.
func (s *ScanNode) Schema() Schema {
	base := s.Relation.Schema()
	if s.Alias != "" {
		base = base.Qualify(s.Alias)
	}
	if s.Projection == nil {
		return base
	}
	out, err := base.Project(s.Projection)
	if err != nil {
		// Projection was validated when set; fall back to the full schema.
		return base
	}
	return out
}

// Children implements LogicalPlan.
func (s *ScanNode) Children() []LogicalPlan { return nil }

// String implements LogicalPlan.
func (s *ScanNode) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan %s", s.Relation.Name())
	if s.Alias != "" {
		fmt.Fprintf(&b, " AS %s", s.Alias)
	}
	if s.Projection != nil {
		fmt.Fprintf(&b, " cols=[%s]", strings.Join(s.Projection, ","))
	}
	if len(s.Pushed) > 0 {
		parts := make([]string, len(s.Pushed))
		for i, e := range s.Pushed {
			parts[i] = e.String()
		}
		fmt.Fprintf(&b, " pushed=[%s]", strings.Join(parts, " AND "))
	}
	return b.String()
}

// FilterNode keeps rows satisfying Cond.
type FilterNode struct {
	Cond  Expr
	Child LogicalPlan
}

// Schema implements LogicalPlan.
func (f *FilterNode) Schema() Schema { return f.Child.Schema() }

// Children implements LogicalPlan.
func (f *FilterNode) Children() []LogicalPlan { return []LogicalPlan{f.Child} }

// String implements LogicalPlan.
func (f *FilterNode) String() string { return fmt.Sprintf("Filter %s", f.Cond) }

// NamedExpr pairs a projection expression with its output name.
type NamedExpr struct {
	Expr Expr
	Name string
}

// ProjectNode computes output columns.
type ProjectNode struct {
	Exprs []NamedExpr
	Child LogicalPlan
}

// Schema implements LogicalPlan.
func (p *ProjectNode) Schema() Schema {
	out := make(Schema, len(p.Exprs))
	for i, ne := range p.Exprs {
		out[i] = Field{Name: ne.Name, Type: ne.Expr.Type()}
	}
	return out
}

// Children implements LogicalPlan.
func (p *ProjectNode) Children() []LogicalPlan { return []LogicalPlan{p.Child} }

// String implements LogicalPlan.
func (p *ProjectNode) String() string {
	parts := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", ne.Expr, ne.Name)
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinType selects inner or left-outer semantics.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
)

// String renders the join type.
func (t JoinType) String() string {
	if t == LeftOuterJoin {
		return "LeftOuter"
	}
	return "Inner"
}

// JoinNode is an equi-join on LeftKeys[i] = RightKeys[i].
type JoinNode struct {
	Left, Right LogicalPlan
	LeftKeys    []Expr
	RightKeys   []Expr
	Type        JoinType
}

// Schema implements LogicalPlan.
func (j *JoinNode) Schema() Schema {
	return append(append(Schema{}, j.Left.Schema()...), j.Right.Schema()...)
}

// Children implements LogicalPlan.
func (j *JoinNode) Children() []LogicalPlan { return []LogicalPlan{j.Left, j.Right} }

// String implements LogicalPlan.
func (j *JoinNode) String() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	return fmt.Sprintf("Join[%s] %s", j.Type, strings.Join(parts, " AND "))
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggCountDistinct
	AggSum
	AggMin
	AggMax
	AggAvg
	AggStddevSamp
)

// String renders the function name.
func (k AggKind) String() string {
	return [...]string{"count", "count_distinct", "sum", "min", "max", "avg", "stddev_samp"}[k]
}

// AggExpr is one aggregate output: Kind over Arg (nil Arg = COUNT(*)).
type AggExpr struct {
	Kind AggKind
	Arg  Expr
	Name string
}

// Type reports the aggregate's result type.
func (a AggExpr) Type() DataType {
	switch a.Kind {
	case AggCount, AggCountDistinct:
		return TypeInt64
	case AggMin, AggMax:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return TypeUnknown
	default:
		return TypeFloat64
	}
}

// String renders the aggregate.
func (a AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Kind, arg, a.Name)
}

// AggregateNode groups by GroupBy and computes Aggs. Output columns are the
// group expressions followed by the aggregates.
type AggregateNode struct {
	GroupBy []NamedExpr
	Aggs    []AggExpr
	Child   LogicalPlan
}

// Schema implements LogicalPlan.
func (a *AggregateNode) Schema() Schema {
	out := make(Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for _, g := range a.GroupBy {
		out = append(out, Field{Name: g.Name, Type: g.Expr.Type()})
	}
	for _, agg := range a.Aggs {
		out = append(out, Field{Name: agg.Name, Type: agg.Type()})
	}
	return out
}

// Children implements LogicalPlan.
func (a *AggregateNode) Children() []LogicalPlan { return []LogicalPlan{a.Child} }

// String implements LogicalPlan.
func (a *AggregateNode) String() string {
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = g.Name
	}
	aggs := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		aggs[i] = g.String()
	}
	return fmt.Sprintf("Aggregate group=[%s] aggs=[%s]", strings.Join(groups, ","), strings.Join(aggs, ", "))
}

// UnionNode concatenates the rows of its children (UNION ALL). Children
// must share the first child's schema layout; the SQL builder renames
// columns positionally to guarantee it.
type UnionNode struct {
	Inputs []LogicalPlan
}

// Schema implements LogicalPlan.
func (u *UnionNode) Schema() Schema { return u.Inputs[0].Schema() }

// Children implements LogicalPlan.
func (u *UnionNode) Children() []LogicalPlan { return u.Inputs }

// String implements LogicalPlan.
func (u *UnionNode) String() string { return fmt.Sprintf("Union (%d inputs)", len(u.Inputs)) }

// SortOrder is one ORDER BY key.
type SortOrder struct {
	Expr Expr
	Desc bool
}

// SortNode orders rows.
type SortNode struct {
	Orders []SortOrder
	Child  LogicalPlan
}

// Schema implements LogicalPlan.
func (s *SortNode) Schema() Schema { return s.Child.Schema() }

// Children implements LogicalPlan.
func (s *SortNode) Children() []LogicalPlan { return []LogicalPlan{s.Child} }

// String implements LogicalPlan.
func (s *SortNode) String() string {
	parts := make([]string, len(s.Orders))
	for i, o := range s.Orders {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		parts[i] = o.Expr.String() + " " + dir
	}
	return "Sort " + strings.Join(parts, ", ")
}

// LimitNode keeps the first N rows.
type LimitNode struct {
	N     int
	Child LogicalPlan
}

// Schema implements LogicalPlan.
func (l *LimitNode) Schema() Schema { return l.Child.Schema() }

// Children implements LogicalPlan.
func (l *LimitNode) Children() []LogicalPlan { return []LogicalPlan{l.Child} }

// String implements LogicalPlan.
func (l *LimitNode) String() string { return fmt.Sprintf("Limit %d", l.N) }

// Format renders the plan tree indented, one node per line.
func Format(p LogicalPlan) string {
	var b strings.Builder
	var walk func(LogicalPlan, int)
	walk = func(n LogicalPlan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}
