package plan

import (
	"strings"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		{Name: "name", Type: TypeString},
		{Name: "age", Type: TypeInt32},
		{Name: "score", Type: TypeFloat64},
		{Name: "active", Type: TypeBool},
	}
}

func mustResolve(t *testing.T, e Expr, s Schema) Expr {
	t.Helper()
	if err := Resolve(e, s); err != nil {
		t.Fatal(err)
	}
	return e
}

func evalOn(t *testing.T, e Expr, row Row) any {
	t.Helper()
	v, err := e.Eval(row)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestColumnRefResolveAndEval(t *testing.T) {
	s := testSchema()
	row := Row{"bob", int32(42), 3.5, true}
	c := mustResolve(t, Col("age"), s)
	if v := evalOn(t, c, row); v != int32(42) {
		t.Errorf("Eval = %v", v)
	}
	if err := Resolve(Col("missing"), s); err == nil {
		t.Error("unknown column must fail to resolve")
	}
	unresolved := Col("age")
	if _, err := unresolved.Eval(row); err == nil {
		t.Error("unresolved column must fail Eval")
	}
}

func TestQualifiedNameResolution(t *testing.T) {
	s := Schema{{Name: "t.age", Type: TypeInt32}, {Name: "u.age", Type: TypeInt32}, {Name: "u.city", Type: TypeString}}
	if s.IndexOf("t.age") != 0 {
		t.Error("qualified lookup failed")
	}
	if s.IndexOf("city") != 2 {
		t.Error("bare lookup of unambiguous qualified column failed")
	}
	if s.IndexOf("age") != -1 {
		t.Error("ambiguous bare lookup must fail")
	}
}

func TestComparisons(t *testing.T) {
	s := testSchema()
	row := Row{"bob", int32(42), 3.5, true}
	cases := []struct {
		e    Expr
		want any
	}{
		{&Comparison{Op: OpEq, L: Col("age"), R: Lit(42)}, true},
		{&Comparison{Op: OpNe, L: Col("age"), R: Lit(42)}, false},
		{&Comparison{Op: OpLt, L: Col("age"), R: Lit(50)}, true},
		{&Comparison{Op: OpLe, L: Col("age"), R: Lit(42)}, true},
		{&Comparison{Op: OpGt, L: Col("score"), R: Lit(3.0)}, true},
		{&Comparison{Op: OpGe, L: Col("score"), R: Lit(4.0)}, false},
		{&Comparison{Op: OpEq, L: Col("name"), R: Lit("bob")}, true},
	}
	for _, c := range cases {
		mustResolve(t, c.e, s)
		if got := evalOn(t, c.e, row); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	s := testSchema()
	row := Row{nil, nil, 1.0, true}
	cmp := mustResolve(t, &Comparison{Op: OpEq, L: Col("age"), R: Lit(42)}, s)
	if v := evalOn(t, cmp, row); v != nil {
		t.Errorf("NULL comparison = %v, want NULL", v)
	}
	// NULL AND false = false; NULL OR true = true.
	and := mustResolve(t, &And{L: &Comparison{Op: OpEq, L: Col("age"), R: Lit(1)}, R: Lit(false)}, s)
	if v := evalOn(t, and, row); v != false {
		t.Errorf("NULL AND false = %v", v)
	}
	or := mustResolve(t, &Or{L: &Comparison{Op: OpEq, L: Col("age"), R: Lit(1)}, R: Lit(true)}, s)
	if v := evalOn(t, or, row); v != true {
		t.Errorf("NULL OR true = %v", v)
	}
	isn := mustResolve(t, &IsNull{E: Col("age")}, s)
	if v := evalOn(t, isn, row); v != true {
		t.Errorf("IS NULL = %v", v)
	}
	notn := mustResolve(t, &IsNull{E: Col("score"), Negate: true}, s)
	if v := evalOn(t, notn, row); v != true {
		t.Errorf("IS NOT NULL = %v", v)
	}
	if ok, err := EvalPredicate(cmp, row); err != nil || ok {
		t.Errorf("EvalPredicate(NULL) = %v, %v", ok, err)
	}
}

func TestLogicalOps(t *testing.T) {
	s := testSchema()
	row := Row{"bob", int32(42), 3.5, true}
	tAge := &Comparison{Op: OpGt, L: Col("age"), R: Lit(40)}
	fAge := &Comparison{Op: OpGt, L: Col("age"), R: Lit(100)}
	and := mustResolve(t, &And{L: tAge, R: fAge}, s)
	if v := evalOn(t, and, row); v != false {
		t.Errorf("AND = %v", v)
	}
	or := mustResolve(t, &Or{L: CloneExpr(tAge), R: CloneExpr(fAge)}, s)
	if v := evalOn(t, or, row); v != true {
		t.Errorf("OR = %v", v)
	}
	not := mustResolve(t, &Not{E: CloneExpr(fAge)}, s)
	if v := evalOn(t, not, row); v != true {
		t.Errorf("NOT = %v", v)
	}
}

func TestInAndNotIn(t *testing.T) {
	s := testSchema()
	row := Row{"bob", int32(42), 3.5, true}
	in := mustResolve(t, &In{E: Col("name"), Values: []Expr{Lit("alice"), Lit("bob")}}, s)
	if v := evalOn(t, in, row); v != true {
		t.Errorf("IN = %v", v)
	}
	notIn := mustResolve(t, &In{E: Col("name"), Values: []Expr{Lit("alice")}, Negate: true}, s)
	if v := evalOn(t, notIn, row); v != true {
		t.Errorf("NOT IN = %v", v)
	}
	notInHit := mustResolve(t, &In{E: Col("name"), Values: []Expr{Lit("bob")}, Negate: true}, s)
	if v := evalOn(t, notInHit, row); v != false {
		t.Errorf("NOT IN hit = %v", v)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "he%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_ll_o", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	s := testSchema()
	row := Row{"bob", int32(10), 4.0, true}
	add := mustResolve(t, &Arithmetic{Op: OpAdd, L: Col("age"), R: Col("score")}, s)
	if v := evalOn(t, add, row); v != 14.0 {
		t.Errorf("add = %v", v)
	}
	div := mustResolve(t, &Arithmetic{Op: OpDiv, L: Col("age"), R: Lit(0)}, s)
	if v := evalOn(t, div, row); v != nil {
		t.Errorf("div by zero = %v, want NULL", v)
	}
	mul := mustResolve(t, &Arithmetic{Op: OpMul, L: Col("age"), R: Lit(3)}, s)
	if v := evalOn(t, mul, row); v != 30.0 {
		t.Errorf("mul = %v", v)
	}
	sub := mustResolve(t, &Arithmetic{Op: OpSub, L: Lit(5), R: Lit(2)}, s)
	if v := evalOn(t, sub, row); v != 3.0 {
		t.Errorf("sub = %v", v)
	}
}

func TestCaseWhen(t *testing.T) {
	s := testSchema()
	e := &CaseWhen{
		Whens: []WhenClause{
			{Cond: &Comparison{Op: OpGt, L: Col("age"), R: Lit(60)}, Then: Lit("old")},
			{Cond: &Comparison{Op: OpGt, L: Col("age"), R: Lit(30)}, Then: Lit("mid")},
		},
		Else: Lit("young"),
	}
	mustResolve(t, e, s)
	if v := evalOn(t, e, Row{"x", int32(42), 0.0, true}); v != "mid" {
		t.Errorf("case = %v", v)
	}
	if v := evalOn(t, e, Row{"x", int32(20), 0.0, true}); v != "young" {
		t.Errorf("case else = %v", v)
	}
	noElse := mustResolve(t, &CaseWhen{Whens: []WhenClause{{Cond: Lit(false), Then: Lit(1)}}}, s)
	if v := evalOn(t, noElse, Row{"x", int32(1), 0.0, true}); v != nil {
		t.Errorf("case without else = %v, want NULL", v)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	orig := &Comparison{Op: OpEq, L: Col("age"), R: Lit(1)}
	clone := CloneExpr(orig).(*Comparison)
	s := testSchema()
	mustResolve(t, clone, s)
	if orig.L.(*ColumnRef).Index() != -1 {
		t.Error("resolving the clone must not touch the original")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := &And{
		L: &Comparison{Op: OpGt, L: Col("a"), R: Col("b")},
		R: &In{E: Col("a"), Values: []Expr{Lit(1)}},
	}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestSplitCombineConjuncts(t *testing.T) {
	a := &Comparison{Op: OpEq, L: Col("a"), R: Lit(1)}
	b := &Comparison{Op: OpEq, L: Col("b"), R: Lit(2)}
	c := &Comparison{Op: OpEq, L: Col("c"), R: Lit(3)}
	e := &And{L: &And{L: a, R: b}, R: c}
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	back := CombineConjuncts(parts)
	if !strings.Contains(back.String(), "AND") {
		t.Errorf("CombineConjuncts = %s", back)
	}
	if CombineConjuncts(nil) != nil {
		t.Error("empty conjuncts must combine to nil")
	}
}

func TestCompareProperty(t *testing.T) {
	// Compare is antisymmetric and consistent for int64 pairs.
	if err := quick.Check(func(a, b int64) bool {
		ab, err1 := Compare(a, b)
		ba, err2 := Compare(b, a)
		return err1 == nil && err2 == nil && ab == -ba
	}, nil); err != nil {
		t.Error(err)
	}
	if _, err := Compare("x", 5); err == nil {
		t.Error("mixed-type compare must fail")
	}
	if c, err := Compare(nil, "x"); err != nil || c != -1 {
		t.Errorf("NULL compare = %d, %v", c, err)
	}
	if c, err := Compare(int32(3), 3.0); err != nil || c != 0 {
		t.Errorf("numeric widening compare = %d, %v", c, err)
	}
}

func TestCoerceLiteral(t *testing.T) {
	cases := []struct {
		v    any
		t    DataType
		want any
	}{
		{int64(5), TypeInt8, int8(5)},
		{int64(300), TypeInt16, int16(300)},
		{int64(5), TypeInt32, int32(5)},
		{int64(5), TypeInt64, int64(5)},
		{int64(5), TypeFloat64, 5.0},
		{3.5, TypeFloat32, float32(3.5)},
		{"x", TypeString, "x"},
		{"x", TypeBinary, []byte("x")},
		{true, TypeBool, true},
		{int64(99), TypeTimestamp, int64(99)},
		{nil, TypeInt64, nil},
	}
	for _, c := range cases {
		got, err := CoerceLiteral(c.v, c.t)
		if err != nil {
			t.Errorf("CoerceLiteral(%v, %s): %v", c.v, c.t, err)
			continue
		}
		switch w := c.want.(type) {
		case []byte:
			if string(got.([]byte)) != string(w) {
				t.Errorf("CoerceLiteral(%v, %s) = %v", c.v, c.t, got)
			}
		default:
			if got != c.want {
				t.Errorf("CoerceLiteral(%v, %s) = %v (%T)", c.v, c.t, got, got)
			}
		}
	}
	if _, err := CoerceLiteral(int64(300), TypeInt8); err == nil {
		t.Error("overflow coercion must fail")
	}
	if _, err := CoerceLiteral("x", TypeInt64); err == nil {
		t.Error("string to int coercion must fail")
	}
}

func TestParseDataType(t *testing.T) {
	for name, want := range map[string]DataType{
		"string": TypeString, "tinyint": TypeInt8, "smallint": TypeInt16,
		"int": TypeInt32, "bigint": TypeInt64, "float": TypeFloat32,
		"double": TypeFloat64, "boolean": TypeBool, "binary": TypeBinary,
		"time": TypeTimestamp, "TIMESTAMP": TypeTimestamp,
	} {
		got, err := ParseDataType(name)
		if err != nil || got != want {
			t.Errorf("ParseDataType(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDataType("blob"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestRowSize(t *testing.T) {
	r := Row{"abc", int64(1), 2.0, true, []byte{1, 2}, nil, int32(7), int16(3), int8(1), float32(1)}
	if got := RowSize(r); got != 3+8+8+1+2+1+4+2+1+4 {
		t.Errorf("RowSize = %d", got)
	}
}
