package plan

import (
	"fmt"
	"strings"
)

// Expr is a typed expression tree evaluated against rows. Expressions are
// resolved against a schema once (Resolve), which binds column references
// to positions, then evaluated per row.
type Expr interface {
	// Eval computes the expression over a row. The schema is the one the
	// expression was resolved against.
	Eval(row Row) (any, error)
	// Type reports the expression's result type after resolution.
	Type() DataType
	// String renders the expression.
	String() string
	// Children returns sub-expressions (for tree walks).
	Children() []Expr
	// withChildren rebuilds the node with replaced children.
	WithChildren(children []Expr) Expr
}

// ColumnRef names a column; Resolve binds its position and type.
type ColumnRef struct {
	Name string
	idx  int
	typ  DataType
}

// Col constructs an unresolved column reference.
func Col(name string) *ColumnRef { return &ColumnRef{Name: name, idx: -1} }

// Eval implements Expr.
func (c *ColumnRef) Eval(row Row) (any, error) {
	if c.idx < 0 {
		return nil, fmt.Errorf("plan: column %q not resolved", c.Name)
	}
	if c.idx >= len(row) {
		return nil, fmt.Errorf("plan: column %q index %d out of range for row of %d", c.Name, c.idx, len(row))
	}
	return row[c.idx], nil
}

// Type implements Expr.
func (c *ColumnRef) Type() DataType { return c.typ }

// String implements Expr.
func (c *ColumnRef) String() string { return c.Name }

// Children implements Expr.
func (c *ColumnRef) Children() []Expr { return nil }

func (c *ColumnRef) WithChildren([]Expr) Expr { return c }

// Index returns the bound position, -1 if unresolved.
func (c *ColumnRef) Index() int { return c.idx }

// Literal is a constant.
type Literal struct {
	Val any
	Typ DataType
}

// Lit constructs a literal, inferring its type from the Go value.
func Lit(v any) *Literal {
	t := TypeUnknown
	switch v.(type) {
	case string:
		t = TypeString
	case int8:
		t = TypeInt8
	case int16:
		t = TypeInt16
	case int32:
		t = TypeInt32
	case int64, int:
		t = TypeInt64
	case float32:
		t = TypeFloat32
	case float64:
		t = TypeFloat64
	case bool:
		t = TypeBool
	case []byte:
		t = TypeBinary
	case nil:
		t = TypeUnknown
	}
	if i, ok := v.(int); ok {
		v = int64(i)
	}
	return &Literal{Val: v, Typ: t}
}

// Eval implements Expr.
func (l *Literal) Eval(Row) (any, error) { return l.Val, nil }

// Type implements Expr.
func (l *Literal) Type() DataType { return l.Typ }

// String implements Expr.
func (l *Literal) String() string {
	if s, ok := l.Val.(string); ok {
		return fmt.Sprintf("%q", s)
	}
	if l.Val == nil {
		return "NULL"
	}
	return fmt.Sprintf("%v", l.Val)
}

// Children implements Expr.
func (l *Literal) Children() []Expr { return nil }

func (l *Literal) WithChildren([]Expr) Expr { return l }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">="}[op]
}

// CmpOps lists every comparison operator (useful for exhaustive tests).
func CmpOps() []CmpOp {
	return []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
}

// Comparison compares two sub-expressions. NULL operands yield NULL
// (represented as nil), which filters treat as false.
type Comparison struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Comparison) Eval(row Row) (any, error) {
	lv, err := c.L.Eval(row)
	if err != nil {
		return nil, err
	}
	rv, err := c.R.Eval(row)
	if err != nil {
		return nil, err
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	cmp, err := Compare(lv, rv)
	if err != nil {
		return nil, fmt.Errorf("plan: %s: %w", c.String(), err)
	}
	switch c.Op {
	case OpEq:
		return cmp == 0, nil
	case OpNe:
		return cmp != 0, nil
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	}
	return nil, fmt.Errorf("plan: bad comparison op %d", c.Op)
}

// Type implements Expr.
func (c *Comparison) Type() DataType { return TypeBool }

// String implements Expr.
func (c *Comparison) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// Children implements Expr.
func (c *Comparison) Children() []Expr { return []Expr{c.L, c.R} }

func (c *Comparison) WithChildren(ch []Expr) Expr { return &Comparison{Op: c.Op, L: ch[0], R: ch[1]} }

// And is logical conjunction with SQL three-valued semantics.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a *And) Eval(row Row) (any, error) {
	lv, err := boolEval(a.L, row)
	if err != nil {
		return nil, err
	}
	if lv != nil && !*lv {
		return false, nil
	}
	rv, err := boolEval(a.R, row)
	if err != nil {
		return nil, err
	}
	if rv != nil && !*rv {
		return false, nil
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	return true, nil
}

// Type implements Expr.
func (a *And) Type() DataType { return TypeBool }

// String implements Expr.
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Children implements Expr.
func (a *And) Children() []Expr { return []Expr{a.L, a.R} }

func (a *And) WithChildren(ch []Expr) Expr { return &And{L: ch[0], R: ch[1]} }

// Or is logical disjunction with SQL three-valued semantics.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o *Or) Eval(row Row) (any, error) {
	lv, err := boolEval(o.L, row)
	if err != nil {
		return nil, err
	}
	if lv != nil && *lv {
		return true, nil
	}
	rv, err := boolEval(o.R, row)
	if err != nil {
		return nil, err
	}
	if rv != nil && *rv {
		return true, nil
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	return false, nil
}

// Type implements Expr.
func (o *Or) Type() DataType { return TypeBool }

// String implements Expr.
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Children implements Expr.
func (o *Or) Children() []Expr { return []Expr{o.L, o.R} }

func (o *Or) WithChildren(ch []Expr) Expr { return &Or{L: ch[0], R: ch[1]} }

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(row Row) (any, error) {
	v, err := boolEval(n.E, row)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	return !*v, nil
}

// Type implements Expr.
func (n *Not) Type() DataType { return TypeBool }

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Children implements Expr.
func (n *Not) Children() []Expr { return []Expr{n.E} }

func (n *Not) WithChildren(ch []Expr) Expr { return &Not{E: ch[0]} }

func boolEval(e Expr, row Row) (*bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	b, ok := v.(bool)
	if !ok {
		return nil, fmt.Errorf("plan: %s is not boolean (%T)", e, v)
	}
	return &b, nil
}

// In tests membership of E in a literal list. Negated, it is the predicate
// the paper singles out as NOT worth pushing down (§VI-A.3).
type In struct {
	E      Expr
	Values []Expr
	Negate bool
}

// Eval implements Expr.
func (in *In) Eval(row Row) (any, error) {
	v, err := in.E.Eval(row)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	sawNull := false
	for _, ve := range in.Values {
		lv, err := ve.Eval(row)
		if err != nil {
			return nil, err
		}
		if lv == nil {
			sawNull = true
			continue
		}
		cmp, err := Compare(v, lv)
		if err != nil {
			return nil, err
		}
		if cmp == 0 {
			return !in.Negate, nil
		}
	}
	if sawNull {
		return nil, nil
	}
	return in.Negate, nil
}

// Type implements Expr.
func (in *In) Type() DataType { return TypeBool }

// String implements Expr.
func (in *In) String() string {
	vals := make([]string, len(in.Values))
	for i, v := range in.Values {
		vals[i] = v.String()
	}
	op := "IN"
	if in.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", in.E, op, strings.Join(vals, ", "))
}

// Children implements Expr.
func (in *In) Children() []Expr { return append([]Expr{in.E}, in.Values...) }

func (in *In) WithChildren(ch []Expr) Expr {
	return &In{E: ch[0], Values: ch[1:], Negate: in.Negate}
}

// Like matches a string column against a SQL LIKE pattern (% and _).
type Like struct {
	E       Expr
	Pattern string
}

// Eval implements Expr.
func (l *Like) Eval(row Row) (any, error) {
	v, err := l.E.Eval(row)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("plan: LIKE needs a string operand, got %T", v)
	}
	return likeMatch(s, l.Pattern), nil
}

func likeMatch(s, pat string) bool {
	// Dynamic programming over the pattern, treating % as any run and _ as
	// any single byte.
	prev := make([]bool, len(s)+1)
	cur := make([]bool, len(s)+1)
	prev[0] = true
	for j := 0; j < len(s); j++ {
		prev[j+1] = false
	}
	for i := 0; i < len(pat); i++ {
		p := pat[i]
		cur[0] = prev[0] && p == '%'
		for j := 1; j <= len(s); j++ {
			switch p {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && s[j-1] == p
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(s)]
}

// Type implements Expr.
func (l *Like) Type() DataType { return TypeBool }

// String implements Expr.
func (l *Like) String() string { return fmt.Sprintf("(%s LIKE %q)", l.E, l.Pattern) }

// Children implements Expr.
func (l *Like) Children() []Expr { return []Expr{l.E} }

func (l *Like) WithChildren(ch []Expr) Expr { return &Like{E: ch[0], Pattern: l.Pattern} }

// IsNull tests for SQL NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (n *IsNull) Eval(row Row) (any, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return nil, err
	}
	return (v == nil) != n.Negate, nil
}

// Type implements Expr.
func (n *IsNull) Type() DataType { return TypeBool }

// String implements Expr.
func (n *IsNull) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.E)
	}
	return fmt.Sprintf("(%s IS NULL)", n.E)
}

// Children implements Expr.
func (n *IsNull) Children() []Expr { return []Expr{n.E} }

func (n *IsNull) WithChildren(ch []Expr) Expr { return &IsNull{E: ch[0], Negate: n.Negate} }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

// String renders the operator.
func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[op] }

// Arithmetic computes L op R as float64 (integer inputs widen; SQL-style
// NULL propagation). Division by zero yields NULL.
type Arithmetic struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a *Arithmetic) Eval(row Row) (any, error) {
	lv, err := a.L.Eval(row)
	if err != nil {
		return nil, err
	}
	rv, err := a.R.Eval(row)
	if err != nil {
		return nil, err
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	lf, ok := toFloat(lv)
	if !ok {
		return nil, fmt.Errorf("plan: %s: non-numeric operand %T", a, lv)
	}
	rf, ok := toFloat(rv)
	if !ok {
		return nil, fmt.Errorf("plan: %s: non-numeric operand %T", a, rv)
	}
	switch a.Op {
	case OpAdd:
		return lf + rf, nil
	case OpSub:
		return lf - rf, nil
	case OpMul:
		return lf * rf, nil
	case OpDiv:
		if rf == 0 {
			return nil, nil
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("plan: bad arithmetic op %d", a.Op)
}

// Type implements Expr.
func (a *Arithmetic) Type() DataType { return TypeFloat64 }

// String implements Expr.
func (a *Arithmetic) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// Children implements Expr.
func (a *Arithmetic) Children() []Expr { return []Expr{a.L, a.R} }

func (a *Arithmetic) WithChildren(ch []Expr) Expr { return &Arithmetic{Op: a.Op, L: ch[0], R: ch[1]} }

// CaseWhen is a searched CASE expression.
type CaseWhen struct {
	Whens []WhenClause
	Else  Expr // may be nil (NULL)
}

// WhenClause pairs a condition with its result.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// Eval implements Expr.
func (c *CaseWhen) Eval(row Row) (any, error) {
	for _, w := range c.Whens {
		b, err := boolEval(w.Cond, row)
		if err != nil {
			return nil, err
		}
		if b != nil && *b {
			return w.Then.Eval(row)
		}
	}
	if c.Else == nil {
		return nil, nil
	}
	return c.Else.Eval(row)
}

// Type implements Expr.
func (c *CaseWhen) Type() DataType {
	if len(c.Whens) > 0 {
		return c.Whens[0].Then.Type()
	}
	return TypeUnknown
}

// String implements Expr.
func (c *CaseWhen) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// Children implements Expr.
func (c *CaseWhen) Children() []Expr {
	var out []Expr
	for _, w := range c.Whens {
		out = append(out, w.Cond, w.Then)
	}
	if c.Else != nil {
		out = append(out, c.Else)
	}
	return out
}

func (c *CaseWhen) WithChildren(ch []Expr) Expr {
	out := &CaseWhen{Whens: make([]WhenClause, len(c.Whens))}
	for i := range c.Whens {
		out.Whens[i] = WhenClause{Cond: ch[2*i], Then: ch[2*i+1]}
	}
	if c.Else != nil {
		out.Else = ch[len(ch)-1]
	}
	return out
}

// Resolve binds every column reference in e to its position in schema,
// returning the first failure.
func Resolve(e Expr, schema Schema) error {
	if c, ok := e.(*ColumnRef); ok {
		i := schema.IndexOf(c.Name)
		if i < 0 {
			return fmt.Errorf("plan: column %q not found in %s", c.Name, schema)
		}
		c.idx = i
		c.typ = schema[i].Type
		return nil
	}
	for _, ch := range e.Children() {
		if err := Resolve(ch, schema); err != nil {
			return err
		}
	}
	return nil
}

// CloneExpr deep-copies an expression tree so separate plans can resolve
// their own copies against different schemas.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *ColumnRef:
		cp := *x
		return &cp
	case *Literal:
		cp := *x
		return &cp
	}
	children := e.Children()
	cloned := make([]Expr, len(children))
	for i, c := range children {
		cloned[i] = CloneExpr(c)
	}
	return e.WithChildren(cloned)
}

// Columns collects the distinct column names referenced by e, in first-use
// order.
func Columns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
			return
		}
		for _, ch := range x.Children() {
			walk(ch)
		}
	}
	walk(e)
	return out
}

// SplitConjuncts flattens nested ANDs into a list of predicates.
func SplitConjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		return append(SplitConjuncts(a.L), SplitConjuncts(a.R)...)
	}
	return []Expr{e}
}

// CombineConjuncts rebuilds a single predicate from a list (nil for empty).
func CombineConjuncts(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &And{L: out, R: e}
		}
	}
	return out
}

// EvalPredicate evaluates a boolean expression, mapping NULL to false.
func EvalPredicate(e Expr, row Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	return ok && b, nil
}
