package plan

import (
	"strings"
	"testing"
)

// fakeRelation satisfies Relation for optimizer tests.
type fakeRelation struct {
	name   string
	schema Schema
}

func (f *fakeRelation) Name() string   { return f.name }
func (f *fakeRelation) Schema() Schema { return f.schema }

func usersRel() *fakeRelation {
	return &fakeRelation{name: "users", schema: Schema{
		{Name: "id", Type: TypeString},
		{Name: "age", Type: TypeInt32},
		{Name: "city", Type: TypeString},
		{Name: "score", Type: TypeFloat64},
	}}
}

func ordersRel() *fakeRelation {
	return &fakeRelation{name: "orders", schema: Schema{
		{Name: "oid", Type: TypeString},
		{Name: "uid", Type: TypeString},
		{Name: "amount", Type: TypeFloat64},
	}}
}

func findScan(p LogicalPlan, rel string) *ScanNode {
	if s, ok := p.(*ScanNode); ok && s.Relation.Name() == rel {
		return s
	}
	for _, c := range p.Children() {
		if s := findScan(c, rel); s != nil {
			return s
		}
	}
	return nil
}

func countFilters(p LogicalPlan) int {
	n := 0
	if _, ok := p.(*FilterNode); ok {
		n++
	}
	for _, c := range p.Children() {
		n += countFilters(c)
	}
	return n
}

func TestPushDownSimpleFilterIntoScan(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	p := &FilterNode{
		Cond:  &Comparison{Op: OpGt, L: Col("age"), R: Lit(30)},
		Child: scan,
	}
	opt := Optimize(p)
	s := findScan(opt, "users")
	if len(s.Pushed) != 1 {
		t.Fatalf("pushed = %v", s.Pushed)
	}
	if countFilters(opt) != 0 {
		t.Errorf("filter should be fully absorbed:\n%s", Format(opt))
	}
}

func TestNotInStaysInScanPushedButOrWithColumnBlocks(t *testing.T) {
	// NOT IN is translatable (the relation decides whether to handle it);
	// a predicate across two columns is not.
	scan := &ScanNode{Relation: usersRel()}
	notIn := &In{E: Col("city"), Values: []Expr{Lit("sf")}, Negate: true}
	crossCol := &Comparison{Op: OpGt, L: Col("age"), R: Col("score")}
	p := &FilterNode{Cond: &And{L: notIn, R: crossCol}, Child: scan}
	opt := Optimize(p)
	s := findScan(opt, "users")
	if len(s.Pushed) != 1 {
		t.Fatalf("pushed = %v", s.Pushed)
	}
	if !strings.Contains(s.Pushed[0].String(), "NOT IN") {
		t.Errorf("NOT IN should be pushed to the seam: %v", s.Pushed)
	}
	if countFilters(opt) != 1 {
		t.Errorf("cross-column predicate must remain an engine filter:\n%s", Format(opt))
	}
}

func TestPushDownThroughJoinToEachSide(t *testing.T) {
	left := &ScanNode{Relation: usersRel()}
	right := &ScanNode{Relation: ordersRel()}
	join := &JoinNode{Left: left, Right: right, LeftKeys: []Expr{Col("id")}, RightKeys: []Expr{Col("uid")}}
	cond := &And{
		L: &Comparison{Op: OpGt, L: Col("age"), R: Lit(21)},
		R: &Comparison{Op: OpGt, L: Col("amount"), R: Lit(10.0)},
	}
	opt := Optimize(&FilterNode{Cond: cond, Child: join})
	if got := len(findScan(opt, "users").Pushed); got != 1 {
		t.Errorf("users pushed = %d", got)
	}
	if got := len(findScan(opt, "orders").Pushed); got != 1 {
		t.Errorf("orders pushed = %d", got)
	}
	if countFilters(opt) != 0 {
		t.Errorf("both sides should absorb their predicates:\n%s", Format(opt))
	}
}

func TestJoinSpanningPredicateStaysAbove(t *testing.T) {
	left := &ScanNode{Relation: usersRel()}
	right := &ScanNode{Relation: ordersRel()}
	join := &JoinNode{Left: left, Right: right, LeftKeys: []Expr{Col("id")}, RightKeys: []Expr{Col("uid")}}
	cond := &Comparison{Op: OpGt, L: Col("score"), R: Col("amount")}
	opt := Optimize(&FilterNode{Cond: cond, Child: join})
	if countFilters(opt) != 1 {
		t.Errorf("join-spanning predicate must stay above the join:\n%s", Format(opt))
	}
}

func TestColumnPruning(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	p := &ProjectNode{
		Exprs: []NamedExpr{{Expr: Col("city"), Name: "city"}},
		Child: &FilterNode{Cond: &Comparison{Op: OpGt, L: Col("age"), R: Lit(30)}, Child: scan},
	}
	opt := Optimize(p)
	s := findScan(opt, "users")
	if len(s.Projection) != 2 {
		t.Fatalf("projection = %v, want [age city]", s.Projection)
	}
	// Schema order is preserved: age before city.
	if s.Projection[0] != "age" || s.Projection[1] != "city" {
		t.Errorf("projection order = %v", s.Projection)
	}
}

func TestColumnPruningCountOnly(t *testing.T) {
	// SELECT count(*): the scan still needs one column to count rows.
	scan := &ScanNode{Relation: usersRel()}
	p := &AggregateNode{Aggs: []AggExpr{{Kind: AggCount, Name: "c"}}, Child: scan}
	opt := Optimize(p)
	s := findScan(opt, "users")
	if len(s.Projection) != 1 {
		t.Errorf("count-only projection = %v", s.Projection)
	}
}

func TestPruningThroughJoin(t *testing.T) {
	left := &ScanNode{Relation: usersRel()}
	right := &ScanNode{Relation: ordersRel()}
	join := &JoinNode{Left: left, Right: right, LeftKeys: []Expr{Col("id")}, RightKeys: []Expr{Col("uid")}}
	p := &ProjectNode{
		Exprs: []NamedExpr{{Expr: Col("city"), Name: "city"}, {Expr: Col("amount"), Name: "amount"}},
		Child: join,
	}
	opt := Optimize(p)
	lp := findScan(opt, "users").Projection
	rp := findScan(opt, "orders").Projection
	if len(lp) != 2 { // city + join key id
		t.Errorf("users projection = %v", lp)
	}
	if len(rp) != 2 { // amount + join key uid
		t.Errorf("orders projection = %v", rp)
	}
}

func TestConstantFolding(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	cond := &Comparison{Op: OpGt, L: Col("age"), R: &Arithmetic{Op: OpAdd, L: Lit(10), R: Lit(20)}}
	opt := Optimize(&FilterNode{Cond: cond, Child: scan})
	s := findScan(opt, "users")
	if len(s.Pushed) != 1 {
		t.Fatalf("pushed = %v (folded literal should make the predicate translatable)", s.Pushed)
	}
	if !strings.Contains(s.Pushed[0].String(), "30") {
		t.Errorf("constant not folded: %s", s.Pushed[0])
	}
}

func TestCombineFilters(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	p := &FilterNode{
		Cond: &Comparison{Op: OpGt, L: Col("age"), R: Col("score")}, // not pushable
		Child: &FilterNode{
			Cond:  &Comparison{Op: OpLt, L: Col("age"), R: Col("score")}, // not pushable
			Child: scan,
		},
	}
	opt := Optimize(p)
	if countFilters(opt) != 1 {
		t.Errorf("adjacent filters must merge:\n%s", Format(opt))
	}
}

func TestTranslatable(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{&Comparison{Op: OpEq, L: Col("a"), R: Lit(1)}, true},
		{&Comparison{Op: OpEq, L: Lit(1), R: Col("a")}, true},
		{&Comparison{Op: OpEq, L: Col("a"), R: Col("b")}, false},
		{&In{E: Col("a"), Values: []Expr{Lit(1), Lit(2)}}, true},
		{&In{E: Col("a"), Values: []Expr{Lit(1)}, Negate: true}, true},
		{&In{E: Col("a"), Values: []Expr{Col("b")}}, false},
		{&Like{E: Col("a"), Pattern: "pre%"}, true},
		{&Like{E: Col("a"), Pattern: "%suf"}, false},
		{&Like{E: Col("a"), Pattern: "mid%dle"}, false},
		{&And{L: &Comparison{Op: OpGt, L: Col("a"), R: Lit(1)}, R: &Comparison{Op: OpLt, L: Col("a"), R: Lit(9)}}, true},
		{&Or{L: &Comparison{Op: OpGt, L: Col("a"), R: Lit(1)}, R: &Comparison{Op: OpGt, L: Col("a"), R: Col("b")}}, false},
		{&IsNull{E: Col("a")}, false},
	}
	for _, c := range cases {
		if got := Translatable(c.e); got != c.want {
			t.Errorf("Translatable(%s) = %v", c.e, got)
		}
	}
}

func TestScanSchemaWithAliasAndProjection(t *testing.T) {
	s := &ScanNode{Relation: usersRel(), Alias: "u"}
	if s.Schema()[0].Name != "u.id" {
		t.Errorf("alias schema = %s", s.Schema())
	}
	s.Projection = []string{"u.age"}
	if len(s.Schema()) != 1 || s.Schema()[0].Name != "u.age" {
		t.Errorf("projected schema = %s", s.Schema())
	}
}

func TestFormatRendersTree(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	p := &LimitNode{N: 5, Child: &SortNode{Orders: []SortOrder{{Expr: Col("age")}}, Child: scan}}
	out := Format(p)
	for _, want := range []string{"Limit 5", "Sort", "Scan users"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestPruningPreservedUnderSortAndLimit(t *testing.T) {
	scan := &ScanNode{Relation: usersRel()}
	p := &LimitNode{N: 3, Child: &SortNode{
		Orders: []SortOrder{{Expr: Col("score"), Desc: true}},
		Child: &ProjectNode{
			Exprs: []NamedExpr{{Expr: Col("score"), Name: "score"}},
			Child: scan,
		},
	}}
	opt := Optimize(p)
	s := findScan(opt, "users")
	if len(s.Projection) != 1 || s.Projection[0] != "score" {
		t.Errorf("projection = %v", s.Projection)
	}
}
