// Package plan defines the relational layer of the engine: data types,
// schemas, rows, typed expressions, logical operators, and the rule-based
// optimizer (the Catalyst analogue, paper §III-A). The optimizer's
// predicate-pushdown and column-pruning rules are what SHC's relation plugs
// into: they deliver pruned columns and pushable filters to the data source
// through the seam in package datasource.
package plan

import (
	"fmt"
	"math"
	"strings"
)

// DataType enumerates the column types SHC's catalog supports (paper
// §IV-A, Code 1: string, tinyint, double, time, ...).
type DataType int

// Supported data types.
const (
	TypeUnknown DataType = iota
	TypeString
	TypeInt8  // "tinyint"
	TypeInt16 // "smallint"
	TypeInt32 // "int"
	TypeInt64 // "bigint"
	TypeFloat32
	TypeFloat64
	TypeBool
	TypeBinary
	TypeTimestamp // "time": milliseconds since the epoch
)

// String renders the SQL-ish name of the type.
func (t DataType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt8:
		return "tinyint"
	case TypeInt16:
		return "smallint"
	case TypeInt32:
		return "int"
	case TypeInt64:
		return "bigint"
	case TypeFloat32:
		return "float"
	case TypeFloat64:
		return "double"
	case TypeBool:
		return "boolean"
	case TypeBinary:
		return "binary"
	case TypeTimestamp:
		return "time"
	}
	return "unknown"
}

// ParseDataType maps a catalog type name to a DataType.
func ParseDataType(name string) (DataType, error) {
	switch strings.ToLower(name) {
	case "string", "varchar":
		return TypeString, nil
	case "tinyint", "byte":
		return TypeInt8, nil
	case "smallint", "short":
		return TypeInt16, nil
	case "int", "integer":
		return TypeInt32, nil
	case "bigint", "long":
		return TypeInt64, nil
	case "float":
		return TypeFloat32, nil
	case "double":
		return TypeFloat64, nil
	case "boolean", "bool":
		return TypeBool, nil
	case "binary":
		return TypeBinary, nil
	case "time", "timestamp":
		return TypeTimestamp, nil
	}
	return TypeUnknown, fmt.Errorf("plan: unknown data type %q", name)
}

// Numeric reports whether the type supports arithmetic.
func (t DataType) Numeric() bool {
	switch t {
	case TypeInt8, TypeInt16, TypeInt32, TypeInt64, TypeFloat32, TypeFloat64, TypeTimestamp:
		return true
	}
	return false
}

// Field is one named, typed column.
type Field struct {
	Name string
	Type DataType
}

// Schema is an ordered list of fields.
type Schema []Field

// IndexOf returns the position of the named column, resolving both bare
// and qualified ("table.col") names; -1 when absent.
func (s Schema) IndexOf(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	// A bare name matches a qualified field when unambiguous.
	if !strings.Contains(name, ".") {
		found := -1
		for i, f := range s {
			if idx := strings.LastIndex(f.Name, "."); idx >= 0 && f.Name[idx+1:] == name {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// Field returns the field with the given name.
func (s Schema) Field(name string) (Field, error) {
	i := s.IndexOf(name)
	if i < 0 {
		return Field{}, fmt.Errorf("plan: column %q not found in schema %s", name, s)
	}
	return s[i], nil
}

// Project returns the sub-schema for the named columns, in order.
func (s Schema) Project(names []string) (Schema, error) {
	out := make(Schema, 0, len(names))
	for _, n := range names {
		f, err := s.Field(n)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Qualify returns a copy of the schema with every field name prefixed by
// alias ("alias.field").
func (s Schema) Qualify(alias string) Schema {
	out := make(Schema, len(s))
	for i, f := range s {
		name := f.Name
		if idx := strings.LastIndex(name, "."); idx >= 0 {
			name = name[idx+1:]
		}
		out[i] = Field{Name: alias + "." + name, Type: f.Type}
	}
	return out
}

// String renders the schema.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Row is one positional record. Values are nil (SQL NULL) or the Go type
// matching the column's DataType: string, int8..int64, float32/64, bool,
// []byte, or int64 for timestamps.
type Row []any

// RowSize estimates the serialized size of a row in bytes; the shuffle
// meter charges it for every repartitioned record.
func RowSize(r Row) int {
	n := 0
	for _, v := range r {
		switch x := v.(type) {
		case nil:
			n++
		case string:
			n += len(x)
		case []byte:
			n += len(x)
		case bool, int8:
			n++
		case int16:
			n += 2
		case int32, float32:
			n += 4
		default:
			n += 8
		}
	}
	return n
}

// Compare orders two scalar values of the same kind. It returns an error
// for incomparable kinds. NULL sorts below everything.
func Compare(a, b any) (int, error) {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0, nil
		case a == nil:
			return -1, nil
		default:
			return 1, nil
		}
	}
	af, aIsNum := toFloat(a)
	bf, bIsNum := toFloat(b)
	if aIsNum && bIsNum {
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	switch x := a.(type) {
	case string:
		y, ok := b.(string)
		if !ok {
			return 0, fmt.Errorf("plan: cannot compare string with %T", b)
		}
		return strings.Compare(x, y), nil
	case bool:
		y, ok := b.(bool)
		if !ok {
			return 0, fmt.Errorf("plan: cannot compare bool with %T", b)
		}
		switch {
		case x == y:
			return 0, nil
		case !x:
			return -1, nil
		default:
			return 1, nil
		}
	case []byte:
		y, ok := b.([]byte)
		if !ok {
			return 0, fmt.Errorf("plan: cannot compare binary with %T", b)
		}
		return strings.Compare(string(x), string(y)), nil
	}
	return 0, fmt.Errorf("plan: cannot compare %T with %T", a, b)
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int8:
		return float64(x), true
	case int16:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case float32:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// ToFloat converts any numeric value to float64.
func ToFloat(v any) (float64, bool) { return toFloat(v) }

// ToInt converts any integer-kind value to int64.
func ToInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int8:
		return int64(x), true
	case int16:
		return int64(x), true
	case int32:
		return int64(x), true
	case int64:
		return x, true
	case int:
		return int64(x), true
	case float64:
		if x == math.Trunc(x) {
			return int64(x), true
		}
	}
	return 0, false
}

// CoerceLiteral converts a parsed literal to the Go representation of the
// target column type, so catalog-typed comparisons and encodings line up.
func CoerceLiteral(v any, t DataType) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeString:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case TypeBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	case TypeBinary:
		switch x := v.(type) {
		case []byte:
			return x, nil
		case string:
			return []byte(x), nil
		}
	case TypeInt8:
		if i, ok := ToInt(v); ok && i >= math.MinInt8 && i <= math.MaxInt8 {
			return int8(i), nil
		}
	case TypeInt16:
		if i, ok := ToInt(v); ok && i >= math.MinInt16 && i <= math.MaxInt16 {
			return int16(i), nil
		}
	case TypeInt32:
		if i, ok := ToInt(v); ok && i >= math.MinInt32 && i <= math.MaxInt32 {
			return int32(i), nil
		}
	case TypeInt64, TypeTimestamp:
		if i, ok := ToInt(v); ok {
			return i, nil
		}
	case TypeFloat32:
		if f, ok := toFloat(v); ok {
			return float32(f), nil
		}
	case TypeFloat64:
		if f, ok := toFloat(v); ok {
			return f, nil
		}
	}
	return nil, fmt.Errorf("plan: cannot coerce %T(%v) to %s", v, v, t)
}
