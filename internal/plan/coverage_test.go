package plan

import (
	"strings"
	"testing"
)

// TestExprTypesAndStrings sweeps Type(), String(), Children(), and
// WithChildren() across every expression kind.
func TestExprTypesAndStrings(t *testing.T) {
	s := testSchema()
	exprs := []struct {
		e       Expr
		typ     DataType
		strPart string
	}{
		{&Comparison{Op: OpEq, L: Col("age"), R: Lit(1)}, TypeBool, "="},
		{&And{L: Lit(true), R: Lit(false)}, TypeBool, "AND"},
		{&Or{L: Lit(true), R: Lit(false)}, TypeBool, "OR"},
		{&Not{E: Lit(true)}, TypeBool, "NOT"},
		{&In{E: Col("name"), Values: []Expr{Lit("a")}}, TypeBool, "IN"},
		{&Like{E: Col("name"), Pattern: "x%"}, TypeBool, "LIKE"},
		{&IsNull{E: Col("name")}, TypeBool, "IS NULL"},
		{&IsNull{E: Col("name"), Negate: true}, TypeBool, "IS NOT NULL"},
		{&Arithmetic{Op: OpAdd, L: Lit(1), R: Lit(2)}, TypeFloat64, "+"},
		{&CaseWhen{Whens: []WhenClause{{Cond: Lit(true), Then: Lit("x")}}, Else: Lit("y")}, TypeString, "CASE"},
	}
	for _, c := range exprs {
		if err := Resolve(c.e, s); err != nil {
			t.Fatalf("%T: %v", c.e, err)
		}
		if got := c.e.Type(); got != c.typ {
			t.Errorf("%s: Type = %s, want %s", c.e, got, c.typ)
		}
		if !strings.Contains(c.e.String(), c.strPart) {
			t.Errorf("%T String = %q, want %q inside", c.e, c.e.String(), c.strPart)
		}
		// WithChildren with cloned children rebuilds an equivalent node.
		kids := c.e.Children()
		cloned := make([]Expr, len(kids))
		for i, k := range kids {
			cloned[i] = CloneExpr(k)
		}
		rebuilt := c.e.WithChildren(cloned)
		if rebuilt.String() != c.e.String() {
			t.Errorf("%T WithChildren changed rendering: %q vs %q", c.e, rebuilt.String(), c.e.String())
		}
	}
}

func TestColumnRefTypeAfterResolve(t *testing.T) {
	s := testSchema()
	c := Col("score")
	if c.Type() != TypeUnknown {
		t.Error("unresolved type must be unknown")
	}
	mustResolve(t, c, s)
	if c.Type() != TypeFloat64 {
		t.Errorf("resolved type = %s", c.Type())
	}
}

func TestLitKinds(t *testing.T) {
	cases := map[DataType]any{
		TypeString:  "x",
		TypeInt8:    int8(1),
		TypeInt16:   int16(1),
		TypeInt32:   int32(1),
		TypeInt64:   7,
		TypeFloat32: float32(1),
		TypeFloat64: 1.5,
		TypeBool:    true,
		TypeBinary:  []byte{1},
		TypeUnknown: nil,
	}
	for want, v := range cases {
		if got := Lit(v).Type(); got != want {
			t.Errorf("Lit(%T).Type = %s, want %s", v, got, want)
		}
	}
	if Lit(nil).String() != "NULL" {
		t.Errorf("NULL literal renders %q", Lit(nil).String())
	}
}

func TestCmpOpsComplete(t *testing.T) {
	ops := CmpOps()
	if len(ops) != 6 {
		t.Fatalf("ops = %v", ops)
	}
	seen := map[string]bool{}
	for _, op := range ops {
		seen[op.String()] = true
	}
	for _, want := range []string{"=", "!=", "<", "<=", ">", ">="} {
		if !seen[want] {
			t.Errorf("missing op %q", want)
		}
	}
}

func TestBooleanErrorPaths(t *testing.T) {
	s := testSchema()
	// Non-boolean operand inside AND/OR/NOT errors out.
	bad := mustResolve(t, &And{L: Col("name"), R: Lit(true)}, s)
	if _, err := bad.Eval(Row{"x", int32(1), 1.0, true}); err == nil {
		t.Error("AND over a string must fail")
	}
	badNot := mustResolve(t, &Not{E: Col("age")}, s)
	if _, err := badNot.Eval(Row{"x", int32(1), 1.0, true}); err == nil {
		t.Error("NOT over an int must fail")
	}
	badLike := mustResolve(t, &Like{E: Col("age"), Pattern: "%"}, s)
	if _, err := badLike.Eval(Row{"x", int32(1), 1.0, true}); err == nil {
		t.Error("LIKE over an int must fail")
	}
	badArith := mustResolve(t, &Arithmetic{Op: OpAdd, L: Col("name"), R: Lit(1)}, s)
	if _, err := badArith.Eval(Row{"x", int32(1), 1.0, true}); err == nil {
		t.Error("arithmetic over a string must fail")
	}
}

func TestAggExprRendering(t *testing.T) {
	cases := []struct {
		agg  AggExpr
		typ  DataType
		text string
	}{
		{AggExpr{Kind: AggCount, Name: "n"}, TypeInt64, "count(*)"},
		{AggExpr{Kind: AggCountDistinct, Arg: Col("x"), Name: "d"}, TypeInt64, "count_distinct(x)"},
		{AggExpr{Kind: AggSum, Arg: Col("x"), Name: "s"}, TypeFloat64, "sum(x)"},
		{AggExpr{Kind: AggAvg, Arg: Col("x"), Name: "a"}, TypeFloat64, "avg(x)"},
		{AggExpr{Kind: AggStddevSamp, Arg: Col("x"), Name: "sd"}, TypeFloat64, "stddev_samp(x)"},
		{AggExpr{Kind: AggMin, Name: "m"}, TypeUnknown, "min(*)"},
	}
	for _, c := range cases {
		if c.agg.Type() != c.typ {
			t.Errorf("%s: type = %s, want %s", c.agg, c.agg.Type(), c.typ)
		}
		if !strings.Contains(c.agg.String(), c.text) {
			t.Errorf("AggExpr renders %q, want %q inside", c.agg.String(), c.text)
		}
	}
	min := AggExpr{Kind: AggMin, Arg: Col("age"), Name: "m"}
	mustResolve(t, min.Arg, testSchema())
	if min.Type() != TypeInt32 {
		t.Errorf("min type follows its argument, got %s", min.Type())
	}
}

func TestNodeStringsAndSchemas(t *testing.T) {
	rel := usersRel()
	scan := &ScanNode{Relation: rel}
	union := &UnionNode{Inputs: []LogicalPlan{scan, &ScanNode{Relation: rel}}}
	if !strings.Contains(union.String(), "Union (2 inputs)") {
		t.Errorf("union string = %q", union.String())
	}
	if len(union.Schema()) != len(rel.Schema()) || len(union.Children()) != 2 {
		t.Error("union schema/children wrong")
	}
	join := &JoinNode{Left: scan, Right: &ScanNode{Relation: ordersRel()},
		LeftKeys: []Expr{Col("id")}, RightKeys: []Expr{Col("uid")}, Type: LeftOuterJoin}
	if !strings.Contains(join.String(), "LeftOuter") {
		t.Errorf("join string = %q", join.String())
	}
	agg := &AggregateNode{GroupBy: []NamedExpr{{Expr: Col("city"), Name: "city"}},
		Aggs: []AggExpr{{Kind: AggCount, Name: "n"}}, Child: scan}
	if !strings.Contains(agg.String(), "group=[city]") {
		t.Errorf("agg string = %q", agg.String())
	}
	sortN := &SortNode{Orders: []SortOrder{{Expr: Col("age"), Desc: true}}, Child: scan}
	if !strings.Contains(sortN.String(), "DESC") {
		t.Errorf("sort string = %q", sortN.String())
	}
	proj := &ProjectNode{Exprs: []NamedExpr{{Expr: Col("id"), Name: "id"}}, Child: scan}
	if !strings.Contains(proj.String(), "id AS id") {
		t.Errorf("project string = %q", proj.String())
	}
	filter := &FilterNode{Cond: Lit(true), Child: scan}
	if !strings.Contains(filter.String(), "Filter") {
		t.Errorf("filter string = %q", filter.String())
	}
	if filter.Schema().String() != scan.Schema().String() {
		t.Error("filter schema must pass through")
	}
}

func TestClonePlanCoversEveryNode(t *testing.T) {
	rel := usersRel()
	p := &LimitNode{N: 1, Child: &SortNode{
		Orders: []SortOrder{{Expr: Col("age")}},
		Child: &UnionNode{Inputs: []LogicalPlan{
			&AggregateNode{
				GroupBy: []NamedExpr{{Expr: Col("city"), Name: "city"}},
				Aggs:    []AggExpr{{Kind: AggSum, Arg: Col("score"), Name: "s"}},
				Child: &FilterNode{Cond: &Comparison{Op: OpGt, L: Col("age"), R: Lit(1)},
					Child: &ScanNode{Relation: rel, Pushed: []Expr{&Comparison{Op: OpLt, L: Col("age"), R: Lit(9)}}}},
			},
			&ProjectNode{
				Exprs: []NamedExpr{{Expr: Col("city"), Name: "city"}, {Expr: Lit(1.0), Name: "s"}},
				Child: &JoinNode{Left: &ScanNode{Relation: rel}, Right: &ScanNode{Relation: ordersRel()},
					LeftKeys: []Expr{Col("id")}, RightKeys: []Expr{Col("uid")}},
			},
		}},
	}}
	clone := ClonePlan(p)
	if Format(clone) != Format(p) {
		t.Errorf("clone differs:\n%s\nvs\n%s", Format(clone), Format(p))
	}
}

func TestDataTypeHelpers(t *testing.T) {
	for _, n := range []DataType{TypeInt8, TypeInt16, TypeInt32, TypeInt64, TypeFloat32, TypeFloat64, TypeTimestamp} {
		if !n.Numeric() {
			t.Errorf("%s should be numeric", n)
		}
	}
	for _, n := range []DataType{TypeString, TypeBool, TypeBinary, TypeUnknown} {
		if n.Numeric() {
			t.Errorf("%s should not be numeric", n)
		}
	}
	if TypeUnknown.String() != "unknown" {
		t.Errorf("unknown renders %q", TypeUnknown.String())
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if _, err := s.Field("missing"); err == nil {
		t.Error("missing field must error")
	}
	if _, err := s.Project([]string{"name", "missing"}); err == nil {
		t.Error("projecting a missing field must error")
	}
	q := s.Qualify("t")
	if q[0].Name != "t.name" {
		t.Errorf("qualify = %s", q)
	}
	// Re-qualifying strips the old prefix.
	q2 := q.Qualify("u")
	if q2[0].Name != "u.name" {
		t.Errorf("requalify = %s", q2)
	}
	if !strings.Contains(s.String(), "name string") {
		t.Errorf("schema string = %q", s.String())
	}
}

func TestToIntAndToFloat(t *testing.T) {
	for _, v := range []any{int8(1), int16(1), int32(1), int64(1), 1, 1.0} {
		if i, ok := ToInt(v); !ok || i != 1 {
			t.Errorf("ToInt(%T) = %d, %v", v, i, ok)
		}
	}
	if _, ok := ToInt(1.5); ok {
		t.Error("ToInt(1.5) must fail")
	}
	if _, ok := ToInt("x"); ok {
		t.Error("ToInt(string) must fail")
	}
	if f, ok := ToFloat(float32(2)); !ok || f != 2 {
		t.Error("ToFloat(float32) wrong")
	}
	if _, ok := ToFloat("x"); ok {
		t.Error("ToFloat(string) must fail")
	}
}
