package plan

import "fmt"

// VecKind is the physical storage class of a Vector. Several catalog types
// share one storage class (every integer width and timestamps ride in
// int64s; both float widths ride in float64s) so the vectorized operators
// compile against a handful of tight loops instead of one per DataType.
type VecKind int

// Vector storage classes.
const (
	KindInvalid VecKind = iota
	KindInt64           // int8/int16/int32/int64/timestamp
	KindFloat64         // float32/float64
	KindString
	KindBool
	KindBytes // binary
	KindAny   // boxed fallback for unknown types
	KindLazy  // undecoded source bytes, materialized on demand
)

// KindOf maps a catalog type to its vector storage class.
func KindOf(t DataType) VecKind {
	switch t {
	case TypeInt8, TypeInt16, TypeInt32, TypeInt64, TypeTimestamp:
		return KindInt64
	case TypeFloat32, TypeFloat64:
		return KindFloat64
	case TypeString:
		return KindString
	case TypeBool:
		return KindBool
	case TypeBinary:
		return KindBytes
	}
	return KindAny
}

// Vector is one column of a Batch: a typed value array plus a null bitmap.
// Exactly one storage slice (matching Kind) is populated. A KindLazy vector
// holds the source's undecoded bytes and a decoder; Value decodes only the
// positions actually read — late materialization for columns the filter
// never touches.
type Vector struct {
	Kind VecKind
	// Typ is the column's catalog type; Value converts storage back to
	// Typ's exact Go representation (an int8 column read through an int64
	// vector still materializes as int8), so vectorized results are
	// byte-identical to the row path's.
	Typ DataType

	Int64s   []int64
	Float64s []float64
	Strings  []string
	Bools    []bool
	Bytes    [][]byte
	Anys     []any

	// Lazy storage: Raw[i] is the undecoded source value, Decode turns it
	// into the boxed Go value. Absent cells are nulls with a nil Raw entry.
	Raw    [][]byte
	Decode func([]byte) (any, error)

	nulls []uint64
	n     int
}

// NewVector returns an empty vector for a column of type t.
func NewVector(t DataType) *Vector {
	return &Vector{Kind: KindOf(t), Typ: t}
}

// NewLazyVector returns an empty lazy vector whose values decode through
// dec when (and only when) they are materialized.
func NewLazyVector(t DataType, dec func([]byte) (any, error)) *Vector {
	return &Vector{Kind: KindLazy, Typ: t, Decode: dec}
}

// Len reports the number of entries.
func (v *Vector) Len() int { return v.n }

// Reset empties the vector, keeping capacity and kind.
func (v *Vector) Reset() {
	v.Int64s = v.Int64s[:0]
	v.Float64s = v.Float64s[:0]
	v.Strings = v.Strings[:0]
	v.Bools = v.Bools[:0]
	v.Bytes = v.Bytes[:0]
	v.Anys = v.Anys[:0]
	v.Raw = v.Raw[:0]
	for i := range v.nulls {
		v.nulls[i] = 0
	}
	v.n = 0
}

// Null reports whether entry i is SQL NULL.
func (v *Vector) Null(i int) bool {
	w := i >> 6
	if w >= len(v.nulls) {
		return false
	}
	return v.nulls[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any entry is NULL.
func (v *Vector) HasNulls() bool {
	for _, w := range v.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

func (v *Vector) setNull(i int) {
	w := i >> 6
	for w >= len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	v.nulls[w] |= 1 << (uint(i) & 63)
}

// AppendNull appends a NULL entry.
func (v *Vector) AppendNull() {
	v.setNull(v.n)
	switch v.Kind {
	case KindInt64:
		v.Int64s = append(v.Int64s, 0)
	case KindFloat64:
		v.Float64s = append(v.Float64s, 0)
	case KindString:
		v.Strings = append(v.Strings, "")
	case KindBool:
		v.Bools = append(v.Bools, false)
	case KindBytes:
		v.Bytes = append(v.Bytes, nil)
	case KindAny:
		v.Anys = append(v.Anys, nil)
	case KindLazy:
		v.Raw = append(v.Raw, nil)
	}
	v.n++
}

// AppendInt64 appends to a KindInt64 vector.
func (v *Vector) AppendInt64(x int64) { v.Int64s = append(v.Int64s, x); v.n++ }

// AppendFloat64 appends to a KindFloat64 vector.
func (v *Vector) AppendFloat64(x float64) { v.Float64s = append(v.Float64s, x); v.n++ }

// AppendString appends to a KindString vector.
func (v *Vector) AppendString(x string) { v.Strings = append(v.Strings, x); v.n++ }

// AppendBool appends to a KindBool vector.
func (v *Vector) AppendBool(x bool) { v.Bools = append(v.Bools, x); v.n++ }

// AppendBytes appends to a KindBytes vector.
func (v *Vector) AppendBytes(x []byte) { v.Bytes = append(v.Bytes, x); v.n++ }

// AppendRaw appends an undecoded value to a KindLazy vector.
func (v *Vector) AppendRaw(raw []byte) { v.Raw = append(v.Raw, raw); v.n++ }

// Append appends a boxed value, dispatching on the column type; nil appends
// NULL. It is the transpose path for row-shaped sources.
func (v *Vector) Append(val any) error {
	if val == nil {
		v.AppendNull()
		return nil
	}
	switch v.Kind {
	case KindInt64:
		i, ok := ToInt(val)
		if !ok {
			return fmt.Errorf("plan: cannot store %T in %s vector", val, v.Typ)
		}
		v.AppendInt64(i)
	case KindFloat64:
		f, ok := ToFloat(val)
		if !ok {
			return fmt.Errorf("plan: cannot store %T in %s vector", val, v.Typ)
		}
		v.AppendFloat64(f)
	case KindString:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("plan: cannot store %T in string vector", val)
		}
		v.AppendString(s)
	case KindBool:
		b, ok := val.(bool)
		if !ok {
			return fmt.Errorf("plan: cannot store %T in bool vector", val)
		}
		v.AppendBool(b)
	case KindBytes:
		b, ok := val.([]byte)
		if !ok {
			return fmt.Errorf("plan: cannot store %T in binary vector", val)
		}
		v.AppendBytes(b)
	default:
		v.Anys = append(v.Anys, val)
		v.n++
	}
	return nil
}

// Value materializes entry i as the boxed Go value of the column's catalog
// type — the exact representation the row path produces. Lazy entries
// decode here, which is the only place untouched columns pay decode cost.
func (v *Vector) Value(i int) (any, error) {
	if v.Null(i) {
		return nil, nil
	}
	switch v.Kind {
	case KindInt64:
		x := v.Int64s[i]
		switch v.Typ {
		case TypeInt8:
			return int8(x), nil
		case TypeInt16:
			return int16(x), nil
		case TypeInt32:
			return int32(x), nil
		}
		return x, nil
	case KindFloat64:
		if v.Typ == TypeFloat32 {
			return float32(v.Float64s[i]), nil
		}
		return v.Float64s[i], nil
	case KindString:
		return v.Strings[i], nil
	case KindBool:
		return v.Bools[i], nil
	case KindBytes:
		return v.Bytes[i], nil
	case KindLazy:
		return v.Decode(v.Raw[i])
	}
	return v.Anys[i], nil
}

// Num reads entry i as float64, the numeric comparison space Compare uses;
// ok=false means NULL. Lazy entries decode; non-numeric values error.
func (v *Vector) Num(i int) (float64, bool, error) {
	if v.Null(i) {
		return 0, false, nil
	}
	switch v.Kind {
	case KindInt64:
		return float64(v.Int64s[i]), true, nil
	case KindFloat64:
		return v.Float64s[i], true, nil
	}
	val, err := v.Value(i)
	if err != nil || val == nil {
		return 0, false, err
	}
	f, ok := ToFloat(val)
	if !ok {
		return 0, false, fmt.Errorf("plan: cannot compare %T numerically", val)
	}
	return f, true, nil
}

// MemSize approximates the vector's decoded bytes for memory metering.
func (v *Vector) MemSize() int64 {
	switch v.Kind {
	case KindInt64, KindFloat64:
		return int64(v.n) * 8
	case KindBool:
		return int64(v.n)
	case KindString:
		var n int64
		for _, s := range v.Strings {
			n += int64(len(s))
		}
		return n
	case KindBytes:
		var n int64
		for _, b := range v.Bytes {
			n += int64(len(b))
		}
		return n
	case KindLazy:
		var n int64
		for _, b := range v.Raw {
			n += int64(len(b))
		}
		return n
	}
	var n int64
	for _, x := range v.Anys {
		n += int64(RowSize(Row{x}))
	}
	return n
}

// Batch is a fixed-size run of rows stored column-wise: one Vector per
// schema field, all the same length. Operators never iterate a Batch
// row-wise; they loop over its vectors guided by a selection vector (the
// indexes of surviving rows) and materialize Rows only at pipeline output.
type Batch struct {
	Schema Schema
	Cols   []*Vector
	n      int
}

// NewBatch returns an empty batch with one eager vector per field.
func NewBatch(schema Schema) *Batch {
	cols := make([]*Vector, len(schema))
	for i, f := range schema {
		cols[i] = NewVector(f.Type)
	}
	return &Batch{Schema: schema, Cols: cols}
}

// Len reports the row count.
func (b *Batch) Len() int { return b.n }

// SetLen records the row count after the producer fills the vectors.
func (b *Batch) SetLen(n int) { b.n = n }

// Reset empties every vector for reuse.
func (b *Batch) Reset() {
	for _, c := range b.Cols {
		c.Reset()
	}
	b.n = 0
}

// AppendRow transposes one row into the batch's vectors.
func (b *Batch) AppendRow(r Row) error {
	for i, c := range b.Cols {
		if err := c.Append(r[i]); err != nil {
			return err
		}
	}
	b.n++
	return nil
}

// MaterializeRow boxes row i into a fresh Row.
func (b *Batch) MaterializeRow(i int) (Row, error) {
	r := make(Row, len(b.Cols))
	for j, c := range b.Cols {
		v, err := c.Value(i)
		if err != nil {
			return nil, err
		}
		r[j] = v
	}
	return r, nil
}

// MemSize approximates the batch's decoded bytes for memory metering.
func (b *Batch) MemSize() int64 {
	var n int64
	for _, c := range b.Cols {
		n += c.MemSize()
	}
	return n
}

// FullSel returns a selection vector covering all n rows, reusing buf's
// backing array when it has capacity.
func FullSel(n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = i
	}
	return buf
}
