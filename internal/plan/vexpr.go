package plan

import (
	"bytes"
	"fmt"
)

// This file compiles resolved expressions into closures over column batches
// — the expression-VM idiom. A predicate compiles once per query into a
// chain of selection-vector transforms (each conjunct a tight loop over one
// or two vectors); a projection compiles into per-output scalar evaluators
// that read vectors positionally. Any expression shape without a typed fast
// path falls back to a closure that materializes just the referenced
// columns of one row and calls the interpreted Eval — so every expression
// is supported and fallbacks still benefit from late materialization.
//
// Compiled programs are immutable and shared across concurrently running
// partitions; all per-worker mutable state lives in EvalScratch.

// EvalScratch holds per-worker scratch for compiled programs, so one
// compiled filter/projection can run on many partitions concurrently.
type EvalScratch struct {
	row Row
}

// NewEvalScratch sizes scratch for programs compiled against schema.
func NewEvalScratch(schema Schema) *EvalScratch {
	return &EvalScratch{row: make(Row, len(schema))}
}

// VecFilter narrows a selection vector to the rows satisfying one conjunct.
// It rewrites sel in place and returns the surviving prefix.
type VecFilter func(b *Batch, sel []int, sc *EvalScratch) ([]int, error)

// CompiledFilter is a predicate compiled to a conjunct chain.
type CompiledFilter struct {
	steps []VecFilter
	// Vectorized reports that every conjunct compiled to a typed loop
	// (false when any conjunct runs through the interpreted fallback).
	Vectorized bool
}

// Run applies the filter, narrowing sel to the surviving rows.
func (f *CompiledFilter) Run(b *Batch, sel []int, sc *EvalScratch) ([]int, error) {
	var err error
	for _, step := range f.steps {
		sel, err = step(b, sel, sc)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			return sel, nil
		}
	}
	return sel, nil
}

// CompileFilter compiles a resolved predicate into a vectorized filter.
// SQL semantics match EvalPredicate exactly: a conjunct evaluating to NULL
// drops the row.
func CompileFilter(e Expr, schema Schema) (*CompiledFilter, error) {
	out := &CompiledFilter{Vectorized: true}
	for _, c := range SplitConjuncts(e) {
		step, fast, err := compileConjunct(c, schema)
		if err != nil {
			return nil, err
		}
		out.steps = append(out.steps, step)
		out.Vectorized = out.Vectorized && fast
	}
	return out, nil
}

// compileConjunct returns a filter step for one conjunct and whether it
// took a typed fast path.
func compileConjunct(e Expr, schema Schema) (VecFilter, bool, error) {
	switch x := e.(type) {
	case *Comparison:
		if f := compileComparison(x); f != nil {
			return f, true, nil
		}
	case *In:
		if f := compileIn(x); f != nil {
			return f, true, nil
		}
	case *IsNull:
		if c, ok := x.E.(*ColumnRef); ok && c.idx >= 0 {
			idx, neg := c.idx, x.Negate
			return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
				v := b.Cols[idx]
				out := sel[:0]
				for _, i := range sel {
					if v.Null(i) != neg {
						out = append(out, i)
					}
				}
				return out, nil
			}, true, nil
		}
	case *Like:
		if c, ok := x.E.(*ColumnRef); ok && c.idx >= 0 && c.typ == TypeString {
			idx, pat := c.idx, x.Pattern
			generic := rowFallbackFilter(x, schema)
			return func(b *Batch, sel []int, sc *EvalScratch) ([]int, error) {
				v := b.Cols[idx]
				if v.Kind != KindString {
					return generic(b, sel, sc)
				}
				out := sel[:0]
				for _, i := range sel {
					if !v.Null(i) && likeMatch(v.Strings[i], pat) {
						out = append(out, i)
					}
				}
				return out, nil
			}, true, nil
		}
	case *Not:
		// NOT pushes through the NULL-dropping filter semantics for nodes
		// whose negation is expressible in the same family: the result is
		// NULL exactly when the operand is, and flips otherwise.
		switch inner := x.E.(type) {
		case *Comparison:
			return compileConjunct(&Comparison{Op: negateCmp(inner.Op), L: inner.L, R: inner.R}, schema)
		case *In:
			return compileConjunct(&In{E: inner.E, Values: inner.Values, Negate: !inner.Negate}, schema)
		case *IsNull:
			return compileConjunct(&IsNull{E: inner.E, Negate: !inner.Negate}, schema)
		case *Not:
			return compileConjunct(inner.E, schema)
		}
	}
	return rowFallbackFilter(e, schema), false, nil
}

func negateCmp(op CmpOp) CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// cmpKeep reports whether a three-way comparison result satisfies op.
func cmpKeep(op CmpOp, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	}
	return c >= 0
}

func cmpFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// compileComparison builds a typed loop for col-vs-literal and col-vs-col
// comparisons; nil when no fast path applies. Numeric comparisons happen in
// float64 space, exactly like Compare, so results match the row path bit
// for bit.
func compileComparison(x *Comparison) VecFilter {
	if c, ok := x.L.(*ColumnRef); ok && c.idx >= 0 {
		if lit, ok := x.R.(*Literal); ok {
			return cmpColLit(c, x.Op, lit.Val)
		}
		if rc, ok := x.R.(*ColumnRef); ok && rc.idx >= 0 {
			return cmpColCol(c, x.Op, rc)
		}
	}
	if lit, ok := x.L.(*Literal); ok {
		if c, ok := x.R.(*ColumnRef); ok && c.idx >= 0 {
			return cmpColLit(c, flipCmp(x.Op), lit.Val)
		}
	}
	return nil
}

func flipCmp(op CmpOp) CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// numAt reads entry i of a numeric vector as float64; ok=false for NULL.
func numAt(v *Vector, i int) (float64, bool, error) { return v.Num(i) }

func cmpColLit(c *ColumnRef, op CmpOp, lit any) VecFilter {
	if lit == nil {
		// NULL literal: every comparison is NULL, nothing survives.
		return func(_ *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			return sel[:0], nil
		}
	}
	idx := c.idx
	switch KindOf(c.typ) {
	case KindInt64, KindFloat64:
		lf, ok := ToFloat(lit)
		if !ok {
			return nil
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			switch v.Kind {
			case KindInt64:
				data := v.Int64s
				for _, i := range sel {
					if !v.Null(i) && cmpKeep(op, cmpFloats(float64(data[i]), lf)) {
						out = append(out, i)
					}
				}
			case KindFloat64:
				data := v.Float64s
				for _, i := range sel {
					if !v.Null(i) && cmpKeep(op, cmpFloats(data[i], lf)) {
						out = append(out, i)
					}
				}
			default:
				for _, i := range sel {
					f, ok, err := numAt(v, i)
					if err != nil {
						return nil, err
					}
					if ok && cmpKeep(op, cmpFloats(f, lf)) {
						out = append(out, i)
					}
				}
			}
			return out, nil
		}
	case KindString:
		ls, ok := lit.(string)
		if !ok {
			return nil
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			if v.Kind == KindString {
				data := v.Strings
				for _, i := range sel {
					if !v.Null(i) && cmpKeep(op, compareStrings(data[i], ls)) {
						out = append(out, i)
					}
				}
				return out, nil
			}
			for _, i := range sel {
				val, err := v.Value(i)
				if err != nil {
					return nil, err
				}
				s, ok := val.(string)
				if val != nil && !ok {
					return nil, fmt.Errorf("plan: cannot compare string with %T", val)
				}
				if val != nil && cmpKeep(op, compareStrings(s, ls)) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	case KindBool:
		lb, ok := lit.(bool)
		if !ok {
			return nil
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			for _, i := range sel {
				val, err := v.Value(i)
				if err != nil {
					return nil, err
				}
				vb, isBool := val.(bool)
				if val == nil {
					continue
				}
				if !isBool {
					return nil, fmt.Errorf("plan: cannot compare bool with %T", val)
				}
				if cmpKeep(op, compareBools(vb, lb)) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	case KindBytes:
		lv, ok := lit.([]byte)
		if !ok {
			return nil
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			if v.Kind == KindBytes {
				data := v.Bytes
				for _, i := range sel {
					if !v.Null(i) && cmpKeep(op, bytes.Compare(data[i], lv)) {
						out = append(out, i)
					}
				}
				return out, nil
			}
			for _, i := range sel {
				val, err := v.Value(i)
				if err != nil {
					return nil, err
				}
				bv, isBytes := val.([]byte)
				if val == nil {
					continue
				}
				if !isBytes {
					return nil, fmt.Errorf("plan: cannot compare binary with %T", val)
				}
				if cmpKeep(op, bytes.Compare(bv, lv)) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	}
	return nil
}

func cmpColCol(l *ColumnRef, op CmpOp, r *ColumnRef) VecFilter {
	lk, rk := KindOf(l.typ), KindOf(r.typ)
	numeric := func(k VecKind) bool { return k == KindInt64 || k == KindFloat64 }
	li, ri := l.idx, r.idx
	switch {
	case numeric(lk) && numeric(rk):
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			lv, rv := b.Cols[li], b.Cols[ri]
			out := sel[:0]
			for _, i := range sel {
				lf, lok, err := numAt(lv, i)
				if err != nil {
					return nil, err
				}
				rf, rok, err := numAt(rv, i)
				if err != nil {
					return nil, err
				}
				if lok && rok && cmpKeep(op, cmpFloats(lf, rf)) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	case lk == KindString && rk == KindString:
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			lv, rv := b.Cols[li], b.Cols[ri]
			out := sel[:0]
			if lv.Kind == KindString && rv.Kind == KindString {
				for _, i := range sel {
					if !lv.Null(i) && !rv.Null(i) && cmpKeep(op, compareStrings(lv.Strings[i], rv.Strings[i])) {
						out = append(out, i)
					}
				}
				return out, nil
			}
			for _, i := range sel {
				a, err := lv.Value(i)
				if err != nil {
					return nil, err
				}
				bb, err := rv.Value(i)
				if err != nil {
					return nil, err
				}
				if a == nil || bb == nil {
					continue
				}
				c, err := Compare(a, bb)
				if err != nil {
					return nil, err
				}
				if cmpKeep(op, c) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	}
	return nil
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBools(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	}
	return 1
}

// compileIn builds a typed membership loop for a column tested against a
// literal list. The three-valued outcome mirrors In.Eval: a match keeps
// (or drops, negated), a miss with a NULL in the list is NULL and drops.
func compileIn(x *In) VecFilter {
	c, ok := x.E.(*ColumnRef)
	if !ok || c.idx < 0 {
		return nil
	}
	lits := make([]any, 0, len(x.Values))
	hasNull := false
	for _, ve := range x.Values {
		lit, ok := ve.(*Literal)
		if !ok {
			return nil
		}
		if lit.Val == nil {
			hasNull = true
			continue
		}
		lits = append(lits, lit.Val)
	}
	idx, neg := c.idx, x.Negate
	switch KindOf(c.typ) {
	case KindInt64, KindFloat64:
		floats := make([]float64, 0, len(lits))
		for _, lv := range lits {
			f, ok := ToFloat(lv)
			if !ok {
				return nil
			}
			floats = append(floats, f)
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			for _, i := range sel {
				f, ok, err := numAt(v, i)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				match := false
				for _, lf := range floats {
					if f == lf {
						match = true
						break
					}
				}
				if keepMembership(match, neg, hasNull) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	case KindString:
		strs := make([]string, 0, len(lits))
		for _, lv := range lits {
			s, ok := lv.(string)
			if !ok {
				return nil
			}
			strs = append(strs, s)
		}
		return func(b *Batch, sel []int, _ *EvalScratch) ([]int, error) {
			v := b.Cols[idx]
			out := sel[:0]
			for _, i := range sel {
				val, err := v.Value(i)
				if err != nil {
					return nil, err
				}
				if val == nil {
					continue
				}
				s, ok := val.(string)
				if !ok {
					return nil, fmt.Errorf("plan: cannot compare string with %T", val)
				}
				match := false
				for _, ls := range strs {
					if s == ls {
						match = true
						break
					}
				}
				if keepMembership(match, neg, hasNull) {
					out = append(out, i)
				}
			}
			return out, nil
		}
	}
	return nil
}

// keepMembership folds In's three-valued result into the filter decision
// for a non-NULL probe: match → !negate; miss with a NULL literal → NULL
// (drop); clean miss → negate.
func keepMembership(match, negate, listHasNull bool) bool {
	if match {
		return !negate
	}
	if listHasNull {
		return false
	}
	return negate
}

// columnIndexes collects the bound positions of every column e references.
func columnIndexes(e Expr) []int {
	var out []int
	seen := make(map[int]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			if c.idx >= 0 && !seen[c.idx] {
				seen[c.idx] = true
				out = append(out, c.idx)
			}
			return
		}
		for _, ch := range x.Children() {
			walk(ch)
		}
	}
	walk(e)
	return out
}

// rowFallbackFilter evaluates one conjunct through the interpreted Eval,
// materializing only the columns it references — the universal fallback
// that keeps every expression shape supported.
func rowFallbackFilter(e Expr, schema Schema) VecFilter {
	cols := columnIndexes(e)
	return func(b *Batch, sel []int, sc *EvalScratch) ([]int, error) {
		out := sel[:0]
		for _, i := range sel {
			for _, ci := range cols {
				v, err := b.Cols[ci].Value(i)
				if err != nil {
					return nil, err
				}
				sc.row[ci] = v
			}
			ok, err := EvalPredicate(e, sc.row)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, nil
	}
}

// scalarFn evaluates one output expression at one batch position, boxed.
type scalarFn func(b *Batch, i int, sc *EvalScratch) (any, error)

// numFn evaluates a numeric expression at one position without boxing;
// null=true represents SQL NULL.
type numFn func(b *Batch, i int, sc *EvalScratch) (v float64, null bool, err error)

// CompiledProjection evaluates a projection list against batch positions.
type CompiledProjection struct {
	fns []scalarFn
	// Vectorized reports that every output compiled to a typed accessor.
	Vectorized bool
}

// CompileProjection compiles resolved projection expressions. Like the
// filter compiler it never fails: unsupported shapes get an interpreted
// fallback that materializes just the referenced columns.
func CompileProjection(exprs []NamedExpr, schema Schema) *CompiledProjection {
	out := &CompiledProjection{fns: make([]scalarFn, len(exprs)), Vectorized: true}
	for i, ne := range exprs {
		fn, fast := compileScalar(ne.Expr, schema)
		out.fns[i] = fn
		out.Vectorized = out.Vectorized && fast
	}
	return out
}

// Width reports the number of output columns.
func (p *CompiledProjection) Width() int { return len(p.fns) }

// ProjectRow evaluates every output expression at position i into dst,
// which must have Width() entries.
func (p *CompiledProjection) ProjectRow(b *Batch, i int, sc *EvalScratch, dst Row) error {
	for j, fn := range p.fns {
		v, err := fn(b, i, sc)
		if err != nil {
			return err
		}
		dst[j] = v
	}
	return nil
}

func compileScalar(e Expr, schema Schema) (scalarFn, bool) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.idx >= 0 {
			idx := x.idx
			return func(b *Batch, i int, _ *EvalScratch) (any, error) {
				return b.Cols[idx].Value(i)
			}, true
		}
	case *Literal:
		v := x.Val
		return func(*Batch, int, *EvalScratch) (any, error) { return v, nil }, true
	case *Arithmetic:
		if nf, ok := compileNum(x); ok {
			return func(b *Batch, i int, sc *EvalScratch) (any, error) {
				v, null, err := nf(b, i, sc)
				if err != nil || null {
					return nil, err
				}
				return v, nil
			}, true
		}
	}
	cols := columnIndexes(e)
	return func(b *Batch, i int, sc *EvalScratch) (any, error) {
		for _, ci := range cols {
			v, err := b.Cols[ci].Value(i)
			if err != nil {
				return nil, err
			}
			sc.row[ci] = v
		}
		return e.Eval(sc.row)
	}, false
}

// compileNum compiles a numeric expression to an unboxed evaluator,
// mirroring Arithmetic.Eval's widening, NULL propagation, and NULL on
// division by zero.
func compileNum(e Expr) (numFn, bool) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.idx >= 0 && x.typ.Numeric() {
			idx := x.idx
			return func(b *Batch, i int, _ *EvalScratch) (float64, bool, error) {
				f, ok, err := numAt(b.Cols[idx], i)
				return f, !ok, err
			}, true
		}
	case *Literal:
		if x.Val == nil {
			return func(*Batch, int, *EvalScratch) (float64, bool, error) { return 0, true, nil }, true
		}
		if f, ok := ToFloat(x.Val); ok {
			return func(*Batch, int, *EvalScratch) (float64, bool, error) { return f, false, nil }, true
		}
	case *Arithmetic:
		lf, lok := compileNum(x.L)
		rf, rok := compileNum(x.R)
		if !lok || !rok {
			return nil, false
		}
		op := x.Op
		return func(b *Batch, i int, sc *EvalScratch) (float64, bool, error) {
			l, lnull, err := lf(b, i, sc)
			if err != nil || lnull {
				return 0, true, err
			}
			r, rnull, err := rf(b, i, sc)
			if err != nil || rnull {
				return 0, true, err
			}
			switch op {
			case OpAdd:
				return l + r, false, nil
			case OpSub:
				return l - r, false, nil
			case OpMul:
				return l * r, false, nil
			}
			if r == 0 {
				return 0, true, nil
			}
			return l / r, false, nil
		}, true
	}
	return nil, false
}
