package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// vbatch transposes rows into a fresh batch.
func vbatch(t *testing.T, schema Schema, rows []Row) *Batch {
	t.Helper()
	b := NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// compiledKeeps runs the compiled filter over all rows of b.
func compiledKeeps(t *testing.T, cond Expr, schema Schema, b *Batch) []int {
	t.Helper()
	if err := Resolve(cond, schema); err != nil {
		t.Fatal(err)
	}
	f, err := CompileFilter(cond, schema)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := f.Run(b, FullSel(b.Len(), nil), NewEvalScratch(schema))
	if err != nil {
		t.Fatal(err)
	}
	return append([]int{}, sel...)
}

// interpretedKeeps is the reference: EvalPredicate row by row.
func interpretedKeeps(t *testing.T, cond Expr, schema Schema, rows []Row) []int {
	t.Helper()
	if err := Resolve(cond, schema); err != nil {
		t.Fatal(err)
	}
	keeps := []int{}
	for i, r := range rows {
		ok, err := EvalPredicate(cond, r)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			keeps = append(keeps, i)
		}
	}
	return keeps
}

func assertSameKeeps(t *testing.T, name string, cond Expr, schema Schema, rows []Row) {
	t.Helper()
	got := compiledKeeps(t, cond, schema, vbatch(t, schema, rows))
	want := interpretedKeeps(t, cond, schema, rows)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: compiled keeps %v, interpreter keeps %v", name, got, want)
	}
}

// TestCompiledFilterNullSemantics pins SQL three-valued logic through the
// vectorized filter: NULL comparisons drop rows, IS [NOT] NULL observes the
// bitmap, IN with a NULL literal never keeps a miss, and NOT flips without
// resurrecting NULLs.
func TestCompiledFilterNullSemantics(t *testing.T) {
	schema := Schema{
		{Name: "a", Type: TypeInt64},
		{Name: "s", Type: TypeString},
	}
	rows := []Row{
		{int64(1), "x"},
		{nil, "y"},
		{int64(7), nil},
		{nil, nil},
		{int64(10), "z"},
	}
	cases := []struct {
		name string
		cond func() Expr
	}{
		{"gt-drops-null", func() Expr { return &Comparison{Op: OpGt, L: Col("a"), R: Lit(int64(5))} }},
		{"ne-drops-null", func() Expr { return &Comparison{Op: OpNe, L: Col("a"), R: Lit(int64(7))} }},
		{"eq-null-literal", func() Expr { return &Comparison{Op: OpEq, L: Col("a"), R: Lit(nil)} }},
		{"is-null", func() Expr { return &IsNull{E: Col("a")} }},
		{"is-not-null", func() Expr { return &IsNull{E: Col("s"), Negate: true} }},
		{"in-with-null-literal", func() Expr {
			return &In{E: Col("a"), Values: []Expr{Lit(int64(1)), Lit(nil)}}
		}},
		{"not-in-null-probe", func() Expr {
			return &In{E: Col("a"), Values: []Expr{Lit(int64(1))}, Negate: true}
		}},
		{"not-gt", func() Expr {
			return &Not{E: &Comparison{Op: OpGt, L: Col("a"), R: Lit(int64(5))}}
		}},
		{"not-not-gt", func() Expr {
			return &Not{E: &Not{E: &Comparison{Op: OpGt, L: Col("a"), R: Lit(int64(5))}}}
		}},
		{"like-drops-null", func() Expr { return &Like{E: Col("s"), Pattern: "%"} }},
		{"and-null-left", func() Expr {
			return &And{
				L: &Comparison{Op: OpGt, L: Col("a"), R: Lit(int64(0))},
				R: &IsNull{E: Col("s"), Negate: true},
			}
		}},
	}
	for _, c := range cases {
		assertSameKeeps(t, c.name, c.cond(), schema, rows)
	}
}

// TestCompiledFilterMixedTypes pins comparisons across storage classes:
// narrow integers and float32 ride wider vectors but compare in the same
// float64 space as the interpreter, including int-vs-float column compares.
func TestCompiledFilterMixedTypes(t *testing.T) {
	schema := Schema{
		{Name: "i8", Type: TypeInt8},
		{Name: "i32", Type: TypeInt32},
		{Name: "f32", Type: TypeFloat32},
		{Name: "f64", Type: TypeFloat64},
		{Name: "s", Type: TypeString},
	}
	rows := []Row{
		{int8(-3), int32(100), float32(2.5), 2.5, "aa"},
		{int8(5), int32(-7), float32(-0.5), 100.0, "bb"},
		{nil, int32(0), nil, 0.0, "cc"},
		{int8(120), nil, float32(1e6), nil, nil},
		{int8(0), int32(42), float32(42), 42.0, "bb"},
	}
	cases := []struct {
		name string
		cond func() Expr
	}{
		{"int8-vs-int-lit", func() Expr { return &Comparison{Op: OpGe, L: Col("i8"), R: Lit(int64(0))} }},
		{"int32-vs-float-lit", func() Expr { return &Comparison{Op: OpLt, L: Col("i32"), R: Lit(41.5)} }},
		{"float32-vs-int-lit", func() Expr { return &Comparison{Op: OpEq, L: Col("f32"), R: Lit(int64(42))} }},
		{"lit-vs-col-flipped", func() Expr { return &Comparison{Op: OpLt, L: Lit(int64(0)), R: Col("i32")} }},
		{"int-vs-float-col", func() Expr { return &Comparison{Op: OpEq, L: Col("f32"), R: Col("f64")} }},
		{"narrow-vs-wide-col", func() Expr { return &Comparison{Op: OpLe, L: Col("i8"), R: Col("i32")} }},
		{"string-eq", func() Expr { return &Comparison{Op: OpEq, L: Col("s"), R: Lit("bb")} }},
		{"numeric-in-mixed-lits", func() Expr {
			return &In{E: Col("i32"), Values: []Expr{Lit(int64(42)), Lit(100.0)}}
		}},
	}
	for _, c := range cases {
		assertSameKeeps(t, c.name, c.cond(), schema, rows)
	}
}

// TestCompiledFilterTypeErrorsMatchInterpreter: when a comparison is
// ill-typed for the data, the compiled path must surface an error just like
// the interpreter instead of silently dropping or keeping rows.
func TestCompiledFilterTypeErrorsMatchInterpreter(t *testing.T) {
	schema := Schema{{Name: "s", Type: TypeString}}
	rows := []Row{{"abc"}}
	cond := &Comparison{Op: OpGt, L: Col("s"), R: Lit(int64(3))}
	if err := Resolve(cond, schema); err != nil {
		t.Fatal(err)
	}
	if _, err := EvalPredicate(cond, rows[0]); err == nil {
		t.Fatal("interpreter accepted string > int; test premise broken")
	}
	f, err := CompileFilter(cond, schema)
	if err != nil {
		t.Fatal(err)
	}
	b := vbatch(t, schema, rows)
	if _, err := f.Run(b, FullSel(b.Len(), nil), NewEvalScratch(schema)); err == nil {
		t.Error("compiled filter accepted string > int")
	}
}

// TestCompiledProjectionNullPropagation pins arithmetic through the
// compiled projection: NULL operands propagate, division by zero is NULL,
// and integer inputs widen to float64 exactly like Arithmetic.Eval.
func TestCompiledProjectionNullPropagation(t *testing.T) {
	schema := Schema{
		{Name: "a", Type: TypeInt64},
		{Name: "b", Type: TypeFloat64},
	}
	rows := []Row{
		{int64(10), 4.0},
		{nil, 4.0},
		{int64(10), nil},
		{int64(10), 0.0},
		{nil, nil},
	}
	exprs := []NamedExpr{
		{Expr: &Arithmetic{Op: OpAdd, L: Col("a"), R: Col("b")}, Name: "sum"},
		{Expr: &Arithmetic{Op: OpDiv, L: Col("a"), R: Col("b")}, Name: "quot"},
		{Expr: &Arithmetic{Op: OpMul, L: Col("a"), R: Lit(nil)}, Name: "times_null"},
		{Expr: Col("a"), Name: "a"},
		{Expr: Lit("k"), Name: "konst"},
	}
	for _, ne := range exprs {
		if err := Resolve(ne.Expr, schema); err != nil {
			t.Fatal(err)
		}
	}
	proj := CompileProjection(exprs, schema)
	if !proj.Vectorized {
		t.Error("arithmetic projection should compile to typed evaluators")
	}
	b := vbatch(t, schema, rows)
	sc := NewEvalScratch(schema)
	dst := make(Row, proj.Width())
	for i, r := range rows {
		if err := proj.ProjectRow(b, i, sc, dst); err != nil {
			t.Fatal(err)
		}
		for j, ne := range exprs {
			want, err := ne.Expr.Eval(r)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dst[j], want) {
				t.Errorf("row %d %s: compiled %#v, interpreter %#v", i, ne.Name, dst[j], want)
			}
		}
	}
}

// TestCompiledFilterMatchesInterpreterRandom is the property test: random
// batches (every storage class, ~15% NULLs) against random predicates —
// typed fast paths and fallback shapes alike — must keep exactly the rows
// the interpreter keeps.
func TestCompiledFilterMatchesInterpreterRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := Schema{
		{Name: "i", Type: TypeInt32},
		{Name: "l", Type: TypeInt64},
		{Name: "f", Type: TypeFloat64},
		{Name: "s", Type: TypeString},
		{Name: "bl", Type: TypeBool},
	}
	randRow := func() Row {
		r := make(Row, len(schema))
		for j, fld := range schema {
			if rng.Float64() < 0.15 {
				continue // NULL
			}
			switch fld.Type {
			case TypeInt32:
				r[j] = int32(rng.Intn(20) - 10)
			case TypeInt64:
				r[j] = int64(rng.Intn(20) - 10)
			case TypeFloat64:
				r[j] = float64(rng.Intn(40))/4 - 5
			case TypeString:
				r[j] = string(rune('a' + rng.Intn(4)))
			case TypeBool:
				r[j] = rng.Intn(2) == 0
			}
		}
		return r
	}
	numCols := []string{"i", "l", "f"}
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	randCond := func() Expr {
		switch rng.Intn(6) {
		case 0: // col vs literal
			return &Comparison{
				Op: ops[rng.Intn(len(ops))],
				L:  Col(numCols[rng.Intn(len(numCols))]),
				R:  Lit(float64(rng.Intn(16)) - 8),
			}
		case 1: // col vs col, mixed numeric kinds
			return &Comparison{
				Op: ops[rng.Intn(len(ops))],
				L:  Col(numCols[rng.Intn(len(numCols))]),
				R:  Col(numCols[rng.Intn(len(numCols))]),
			}
		case 2: // membership with an occasional NULL literal
			vals := []Expr{Lit(int64(rng.Intn(10) - 5)), Lit(float64(rng.Intn(10) - 5))}
			if rng.Intn(3) == 0 {
				vals = append(vals, Lit(nil))
			}
			return &In{E: Col(numCols[rng.Intn(len(numCols))]), Values: vals, Negate: rng.Intn(2) == 0}
		case 3: // string predicates
			if rng.Intn(2) == 0 {
				return &Comparison{Op: ops[rng.Intn(len(ops))], L: Col("s"), R: Lit(string(rune('a' + rng.Intn(4))))}
			}
			return &Like{E: Col("s"), Pattern: string(rune('a'+rng.Intn(4))) + "%"}
		case 4: // NOT / IS NULL shapes
			if rng.Intn(2) == 0 {
				return &IsNull{E: Col(schema[rng.Intn(len(schema))].Name), Negate: rng.Intn(2) == 0}
			}
			return &Not{E: &Comparison{
				Op: ops[rng.Intn(len(ops))],
				L:  Col(numCols[rng.Intn(len(numCols))]),
				R:  Lit(int64(rng.Intn(10) - 5)),
			}}
		default: // fallback shape: arithmetic inside the comparison
			return &Comparison{
				Op: ops[rng.Intn(len(ops))],
				L:  &Arithmetic{Op: OpAdd, L: Col("i"), R: Col("f")},
				R:  Lit(float64(rng.Intn(10) - 5)),
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		rows := make([]Row, n)
		for i := range rows {
			rows[i] = randRow()
		}
		cond := randCond()
		if rng.Intn(3) == 0 {
			cond = &And{L: cond, R: randCond()}
		}
		name := fmt.Sprintf("trial %d: %s", trial, cond)
		assertSameKeeps(t, name, cond, schema, rows)
	}
}

// TestVectorValueRestoresExactTypes: materialization out of wide storage
// must give back the catalog type's exact Go representation.
func TestVectorValueRestoresExactTypes(t *testing.T) {
	schema := Schema{
		{Name: "i8", Type: TypeInt8},
		{Name: "i16", Type: TypeInt16},
		{Name: "i32", Type: TypeInt32},
		{Name: "i64", Type: TypeInt64},
		{Name: "f32", Type: TypeFloat32},
		{Name: "f64", Type: TypeFloat64},
		{Name: "ts", Type: TypeTimestamp},
	}
	row := Row{int8(1), int16(2), int32(3), int64(4), float32(1.5), 2.5, int64(99)}
	b := vbatch(t, schema, []Row{row})
	got, err := b.MaterializeRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, row) {
		t.Fatalf("materialized %#v, want %#v", got, row)
	}
}
