package plan

import (
	"strings"
	"testing"
)

// TestFingerprintMasksLiterals: the same query shape with different
// constants fingerprints identically; a structurally different predicate
// does not.
func TestFingerprintMasksLiterals(t *testing.T) {
	build := func(age any) LogicalPlan {
		return &FilterNode{
			Cond:  &Comparison{Op: OpGt, L: Col("age"), R: Lit(age)},
			Child: &ScanNode{Relation: usersRel()},
		}
	}
	fp1, shape1 := Fingerprint(build(30))
	fp2, shape2 := Fingerprint(build(99))
	if fp1 != fp2 || shape1 != shape2 {
		t.Fatalf("literal change altered fingerprint:\n  %s %s\n  %s %s", fp1, shape1, fp2, shape2)
	}
	if strings.Contains(shape1, "30") {
		t.Fatalf("shape leaks the literal: %s", shape1)
	}
	if !strings.Contains(shape1, "?") {
		t.Fatalf("shape has no placeholder: %s", shape1)
	}
	if len(fp1) != 16 {
		t.Fatalf("fingerprint = %q, want 16 hex digits", fp1)
	}

	ne := &FilterNode{
		Cond:  &Comparison{Op: OpNe, L: Col("age"), R: Lit(30)},
		Child: &ScanNode{Relation: usersRel()},
	}
	if fp3, _ := Fingerprint(ne); fp3 == fp1 {
		t.Fatal("different operator produced the same fingerprint")
	}
}

// TestFingerprintCollapsesInLists: IN lists of different lengths normalize
// to one shape, so the stats table doesn't fragment across list sizes.
func TestFingerprintCollapsesInLists(t *testing.T) {
	build := func(vals ...any) LogicalPlan {
		es := make([]Expr, len(vals))
		for i, v := range vals {
			es[i] = Lit(v)
		}
		return &FilterNode{
			Cond:  &In{E: Col("city"), Values: es},
			Child: &ScanNode{Relation: usersRel()},
		}
	}
	fp2, _ := Fingerprint(build("a", "b"))
	fp5, shape := Fingerprint(build("a", "b", "c", "d", "e"))
	if fp2 != fp5 {
		t.Fatalf("IN list length altered fingerprint: %s", shape)
	}
	if strings.Contains(shape, `"a"`) {
		t.Fatalf("shape leaks IN values: %s", shape)
	}
}

// TestFingerprintStructuralDetails: masked limits share a shape; scans of
// different tables, or different projections, do not.
func TestFingerprintStructuralDetails(t *testing.T) {
	lim := func(n int) LogicalPlan {
		return &LimitNode{N: n, Child: &ScanNode{Relation: usersRel()}}
	}
	fa, _ := Fingerprint(lim(10))
	fb, _ := Fingerprint(lim(500))
	if fa != fb {
		t.Fatal("limit count altered fingerprint")
	}

	fu, _ := Fingerprint(&ScanNode{Relation: usersRel()})
	fo, _ := Fingerprint(&ScanNode{Relation: ordersRel()})
	if fu == fo {
		t.Fatal("different tables share a fingerprint")
	}

	p1, _ := Fingerprint(&ScanNode{Relation: usersRel(), Projection: []string{"id"}})
	p2, _ := Fingerprint(&ScanNode{Relation: usersRel(), Projection: []string{"age"}})
	if p1 == p2 {
		t.Fatal("different projections share a fingerprint")
	}
}

// TestFingerprintCoversOptimizedPlans: a full optimize pass (pushdown,
// pruning) still yields literal-independent fingerprints — the shape must
// mask literals that moved into ScanNode.Pushed.
func TestFingerprintCoversOptimizedPlans(t *testing.T) {
	build := func(min any) LogicalPlan {
		return Optimize(&ProjectNode{
			Exprs: []NamedExpr{{Expr: Col("id"), Name: "id"}},
			Child: &FilterNode{
				Cond:  &Comparison{Op: OpGe, L: Col("age"), R: Lit(min)},
				Child: &ScanNode{Relation: usersRel()},
			},
		})
	}
	fp1, shape := Fingerprint(build(18))
	fp2, _ := Fingerprint(build(65))
	if fp1 != fp2 {
		t.Fatalf("optimized plans with different literals diverge: %s", shape)
	}
	if strings.Contains(shape, "18") {
		t.Fatalf("pushed predicate leaks its literal: %s", shape)
	}
}
