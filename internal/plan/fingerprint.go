package plan

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Fingerprint normalizes an optimized logical plan to its statement shape —
// the plan rendered with every literal masked to '?' and IN lists collapsed
// — and hashes it. Queries that differ only in their constants share a
// fingerprint, which is what lets the ops plane aggregate per-statement
// stats (and, later, key a plan cache) without retaining query text. The
// fingerprint is the FNV-1a hash of the shape as 16 hex digits.
func Fingerprint(p LogicalPlan) (fp, shape string) {
	shape = Shape(p)
	h := fnv.New64a()
	h.Write([]byte(shape))
	return fmt.Sprintf("%016x", h.Sum64()), shape
}

// Shape renders the plan one-line with literals masked: each node as
// Name[detail], children parenthesized, e.g.
// "Project[v AS v](Filter[(k > ?)](Scan[t cols=[k,v]]))".
func Shape(p LogicalPlan) string {
	head := nodeShape(p)
	kids := p.Children()
	if len(kids) == 0 {
		return head
	}
	parts := make([]string, len(kids))
	for i, c := range kids {
		parts[i] = Shape(c)
	}
	return head + "(" + strings.Join(parts, ",") + ")"
}

// nodeShape mirrors each node's String() with expressions normalized and
// non-structural constants (limit counts) masked.
func nodeShape(p LogicalPlan) string {
	switch n := p.(type) {
	case *ScanNode:
		var b strings.Builder
		fmt.Fprintf(&b, "Scan[%s", n.Relation.Name())
		if n.Alias != "" {
			fmt.Fprintf(&b, " AS %s", n.Alias)
		}
		if n.Projection != nil {
			fmt.Fprintf(&b, " cols=[%s]", strings.Join(n.Projection, ","))
		}
		if len(n.Pushed) > 0 {
			parts := make([]string, len(n.Pushed))
			for i, e := range n.Pushed {
				parts[i] = exprShape(e)
			}
			fmt.Fprintf(&b, " pushed=[%s]", strings.Join(parts, " AND "))
		}
		b.WriteByte(']')
		return b.String()
	case *FilterNode:
		return "Filter[" + exprShape(n.Cond) + "]"
	case *ProjectNode:
		parts := make([]string, len(n.Exprs))
		for i, ne := range n.Exprs {
			parts[i] = exprShape(ne.Expr) + " AS " + ne.Name
		}
		return "Project[" + strings.Join(parts, ", ") + "]"
	case *JoinNode:
		parts := make([]string, len(n.LeftKeys))
		for i := range n.LeftKeys {
			parts[i] = exprShape(n.LeftKeys[i]) + " = " + exprShape(n.RightKeys[i])
		}
		return fmt.Sprintf("Join[%s %s]", n.Type, strings.Join(parts, " AND "))
	case *AggregateNode:
		groups := make([]string, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groups[i] = exprShape(g.Expr)
		}
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = exprShape(a.Arg)
			}
			aggs[i] = fmt.Sprintf("%s(%s)", a.Kind, arg)
		}
		return fmt.Sprintf("Aggregate[group=[%s] aggs=[%s]]",
			strings.Join(groups, ","), strings.Join(aggs, ", "))
	case *UnionNode:
		return "Union"
	case *SortNode:
		parts := make([]string, len(n.Orders))
		for i, o := range n.Orders {
			dir := " ASC"
			if o.Desc {
				dir = " DESC"
			}
			parts[i] = exprShape(o.Expr) + dir
		}
		return "Sort[" + strings.Join(parts, ", ") + "]"
	case *LimitNode:
		return "Limit[?]"
	default:
		return p.String()
	}
}

// exprShape renders an expression with every literal masked to '?'. An IN
// list of literals collapses to a single '?' regardless of length, so
// "k IN (1,2)" and "k IN (1,2,3)" share a shape the way pg_stat_statements
// normalizes them.
func exprShape(e Expr) string {
	switch x := e.(type) {
	case *Literal:
		return "?"
	case *ColumnRef:
		return x.Name
	case *Comparison:
		return fmt.Sprintf("(%s %s %s)", exprShape(x.L), x.Op, exprShape(x.R))
	case *And:
		return fmt.Sprintf("(%s AND %s)", exprShape(x.L), exprShape(x.R))
	case *Or:
		return fmt.Sprintf("(%s OR %s)", exprShape(x.L), exprShape(x.R))
	case *Not:
		return "NOT " + exprShape(x.E)
	case *In:
		op := "IN"
		if x.Negate {
			op = "NOT IN"
		}
		list := "?"
		for _, v := range x.Values {
			if _, lit := v.(*Literal); !lit {
				parts := make([]string, len(x.Values))
				for i, ve := range x.Values {
					parts[i] = exprShape(ve)
				}
				list = strings.Join(parts, ", ")
				break
			}
		}
		return fmt.Sprintf("(%s %s (%s))", exprShape(x.E), op, list)
	case *Like:
		return fmt.Sprintf("(%s LIKE ?)", exprShape(x.E))
	case *IsNull:
		if x.Negate {
			return fmt.Sprintf("(%s IS NOT NULL)", exprShape(x.E))
		}
		return fmt.Sprintf("(%s IS NULL)", exprShape(x.E))
	case *Arithmetic:
		return fmt.Sprintf("(%s %s %s)", exprShape(x.L), x.Op, exprShape(x.R))
	case *CaseWhen:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range x.Whens {
			fmt.Fprintf(&b, " WHEN %s THEN %s", exprShape(w.Cond), exprShape(w.Then))
		}
		if x.Else != nil {
			fmt.Fprintf(&b, " ELSE %s", exprShape(x.Else))
		}
		b.WriteString(" END")
		return b.String()
	default:
		return e.String()
	}
}
