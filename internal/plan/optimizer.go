package plan

import (
	"sort"
	"strings"
)

// Optimize applies the rule-based optimizations the paper leans on
// (§VI-A): constant folding, filter combination, predicate pushdown toward
// (and into) scans, and column pruning. The result is a plan whose ScanNode
// leaves carry their pushed predicates and pruned projections; the physical
// planner translates those into data-source filters and required columns.
func Optimize(p LogicalPlan) LogicalPlan {
	// Work on a private copy: optimization mutates scan nodes, and logical
	// plans are reusable (a DataFrame may be collected repeatedly).
	p = ClonePlan(p)
	p = rewriteExprs(p, foldConstants)
	p = combineFilters(p)
	p = pushDownFilters(p)
	p = pruneColumns(p, nil)
	return p
}

// ClonePlan deep-copies a logical plan: nodes and expressions are cloned,
// relations are shared.
func ClonePlan(p LogicalPlan) LogicalPlan {
	switch n := p.(type) {
	case *ScanNode:
		cp := &ScanNode{Relation: n.Relation, Alias: n.Alias}
		cp.Projection = append([]string(nil), n.Projection...)
		for _, e := range n.Pushed {
			cp.Pushed = append(cp.Pushed, CloneExpr(e))
		}
		return cp
	case *FilterNode:
		return &FilterNode{Cond: CloneExpr(n.Cond), Child: ClonePlan(n.Child)}
	case *ProjectNode:
		exprs := make([]NamedExpr, len(n.Exprs))
		for i, ne := range n.Exprs {
			exprs[i] = NamedExpr{Expr: CloneExpr(ne.Expr), Name: ne.Name}
		}
		return &ProjectNode{Exprs: exprs, Child: ClonePlan(n.Child)}
	case *JoinNode:
		cp := &JoinNode{Left: ClonePlan(n.Left), Right: ClonePlan(n.Right), Type: n.Type}
		for _, k := range n.LeftKeys {
			cp.LeftKeys = append(cp.LeftKeys, CloneExpr(k))
		}
		for _, k := range n.RightKeys {
			cp.RightKeys = append(cp.RightKeys, CloneExpr(k))
		}
		return cp
	case *AggregateNode:
		groups := make([]NamedExpr, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groups[i] = NamedExpr{Expr: CloneExpr(g.Expr), Name: g.Name}
		}
		aggs := make([]AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = CloneExpr(a.Arg)
			}
		}
		return &AggregateNode{GroupBy: groups, Aggs: aggs, Child: ClonePlan(n.Child)}
	case *SortNode:
		orders := make([]SortOrder, len(n.Orders))
		for i, o := range n.Orders {
			orders[i] = SortOrder{Expr: CloneExpr(o.Expr), Desc: o.Desc}
		}
		return &SortNode{Orders: orders, Child: ClonePlan(n.Child)}
	case *LimitNode:
		return &LimitNode{N: n.N, Child: ClonePlan(n.Child)}
	case *UnionNode:
		inputs := make([]LogicalPlan, len(n.Inputs))
		for i, c := range n.Inputs {
			inputs[i] = ClonePlan(c)
		}
		return &UnionNode{Inputs: inputs}
	}
	return p
}

// rewriteExprs applies fn to every expression in the tree, bottom-up.
func rewriteExprs(p LogicalPlan, fn func(Expr) Expr) LogicalPlan {
	switch n := p.(type) {
	case *ScanNode:
		return n
	case *FilterNode:
		return &FilterNode{Cond: mapExpr(n.Cond, fn), Child: rewriteExprs(n.Child, fn)}
	case *ProjectNode:
		exprs := make([]NamedExpr, len(n.Exprs))
		for i, ne := range n.Exprs {
			exprs[i] = NamedExpr{Expr: mapExpr(ne.Expr, fn), Name: ne.Name}
		}
		return &ProjectNode{Exprs: exprs, Child: rewriteExprs(n.Child, fn)}
	case *JoinNode:
		return &JoinNode{
			Left: rewriteExprs(n.Left, fn), Right: rewriteExprs(n.Right, fn),
			LeftKeys: mapExprs(n.LeftKeys, fn), RightKeys: mapExprs(n.RightKeys, fn),
			Type: n.Type,
		}
	case *AggregateNode:
		groups := make([]NamedExpr, len(n.GroupBy))
		for i, g := range n.GroupBy {
			groups[i] = NamedExpr{Expr: mapExpr(g.Expr, fn), Name: g.Name}
		}
		aggs := make([]AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = mapExpr(a.Arg, fn)
			}
		}
		return &AggregateNode{GroupBy: groups, Aggs: aggs, Child: rewriteExprs(n.Child, fn)}
	case *SortNode:
		orders := make([]SortOrder, len(n.Orders))
		for i, o := range n.Orders {
			orders[i] = SortOrder{Expr: mapExpr(o.Expr, fn), Desc: o.Desc}
		}
		return &SortNode{Orders: orders, Child: rewriteExprs(n.Child, fn)}
	case *LimitNode:
		return &LimitNode{N: n.N, Child: rewriteExprs(n.Child, fn)}
	case *UnionNode:
		inputs := make([]LogicalPlan, len(n.Inputs))
		for i, c := range n.Inputs {
			inputs[i] = rewriteExprs(c, fn)
		}
		return &UnionNode{Inputs: inputs}
	}
	return p
}

func mapExprs(es []Expr, fn func(Expr) Expr) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = mapExpr(e, fn)
	}
	return out
}

// mapExpr rewrites an expression bottom-up with fn.
func mapExpr(e Expr, fn func(Expr) Expr) Expr {
	children := e.Children()
	if len(children) > 0 {
		mapped := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			mapped[i] = mapExpr(c, fn)
			if mapped[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(mapped)
		}
	}
	return fn(e)
}

// foldConstants evaluates expressions with no column references.
func foldConstants(e Expr) Expr {
	switch e.(type) {
	case *Literal, *ColumnRef:
		return e
	}
	if len(Columns(e)) != 0 {
		return e
	}
	v, err := e.Eval(nil)
	if err != nil {
		return e
	}
	lit := Lit(v)
	if lit.Typ == TypeUnknown && v != nil {
		return e
	}
	return lit
}

// combineFilters merges adjacent FilterNodes.
func combineFilters(p LogicalPlan) LogicalPlan {
	switch n := p.(type) {
	case *FilterNode:
		child := combineFilters(n.Child)
		if fc, ok := child.(*FilterNode); ok {
			return &FilterNode{Cond: &And{L: n.Cond, R: fc.Cond}, Child: fc.Child}
		}
		return &FilterNode{Cond: n.Cond, Child: child}
	case *ProjectNode:
		return &ProjectNode{Exprs: n.Exprs, Child: combineFilters(n.Child)}
	case *JoinNode:
		return &JoinNode{Left: combineFilters(n.Left), Right: combineFilters(n.Right), LeftKeys: n.LeftKeys, RightKeys: n.RightKeys, Type: n.Type}
	case *AggregateNode:
		return &AggregateNode{GroupBy: n.GroupBy, Aggs: n.Aggs, Child: combineFilters(n.Child)}
	case *SortNode:
		return &SortNode{Orders: n.Orders, Child: combineFilters(n.Child)}
	case *LimitNode:
		return &LimitNode{N: n.N, Child: combineFilters(n.Child)}
	case *UnionNode:
		inputs := make([]LogicalPlan, len(n.Inputs))
		for i, c := range n.Inputs {
			inputs[i] = combineFilters(c)
		}
		return &UnionNode{Inputs: inputs}
	}
	return p
}

// pushDownFilters moves filter conjuncts as close to the scans as possible
// and deposits source-translatable ones into ScanNode.Pushed.
func pushDownFilters(p LogicalPlan) LogicalPlan {
	switch n := p.(type) {
	case *FilterNode:
		child := pushDownFilters(n.Child)
		conjuncts := SplitConjuncts(n.Cond)
		remaining := pushInto(child, conjuncts)
		if rem := CombineConjuncts(remaining); rem != nil {
			return &FilterNode{Cond: rem, Child: child}
		}
		return child
	case *ProjectNode:
		return &ProjectNode{Exprs: n.Exprs, Child: pushDownFilters(n.Child)}
	case *JoinNode:
		return &JoinNode{Left: pushDownFilters(n.Left), Right: pushDownFilters(n.Right), LeftKeys: n.LeftKeys, RightKeys: n.RightKeys, Type: n.Type}
	case *AggregateNode:
		return &AggregateNode{GroupBy: n.GroupBy, Aggs: n.Aggs, Child: pushDownFilters(n.Child)}
	case *SortNode:
		return &SortNode{Orders: n.Orders, Child: pushDownFilters(n.Child)}
	case *LimitNode:
		return &LimitNode{N: n.N, Child: pushDownFilters(n.Child)}
	case *UnionNode:
		inputs := make([]LogicalPlan, len(n.Inputs))
		for i, c := range n.Inputs {
			inputs[i] = pushDownFilters(c)
		}
		return &UnionNode{Inputs: inputs}
	}
	return p
}

// pushInto tries to sink each conjunct into node (mutating scans in place)
// and returns the conjuncts that could not be fully absorbed.
func pushInto(node LogicalPlan, conjuncts []Expr) []Expr {
	var remaining []Expr
	for _, c := range conjuncts {
		if !sink(node, c) {
			remaining = append(remaining, c)
		}
	}
	return remaining
}

// sink places one predicate below node when legal. It returns true only
// when the predicate has been fully absorbed (pushed into a scan or wrapped
// in a new filter directly above one).
func sink(node LogicalPlan, pred Expr) bool {
	refs := Columns(pred)
	switch n := node.(type) {
	case *ScanNode:
		if !coveredBy(refs, n.Schema()) {
			return false
		}
		if Translatable(pred) {
			n.Pushed = append(n.Pushed, pred)
			return true
		}
		return false
	case *FilterNode:
		if sink(n.Child, pred) {
			return true
		}
		if coveredBy(refs, n.Child.Schema()) {
			n.Cond = &And{L: n.Cond, R: pred}
			return true
		}
		return false
	case *JoinNode:
		if coveredBy(refs, n.Left.Schema()) {
			if sink(n.Left, pred) {
				return true
			}
			n.Left = &FilterNode{Cond: pred, Child: n.Left}
			return true
		}
		// Right-side predicates may not sink below a left-outer join:
		// they must also drop NULL-extended rows, which only happens when
		// evaluated above the join.
		if n.Type == InnerJoin && coveredBy(refs, n.Right.Schema()) {
			if sink(n.Right, pred) {
				return true
			}
			n.Right = &FilterNode{Cond: pred, Child: n.Right}
			return true
		}
		return false
	case *ProjectNode:
		// Only push predicates whose columns pass through the projection
		// unchanged (a bare column reference projected under its own name).
		for _, r := range refs {
			if !passesThrough(n, r) {
				return false
			}
		}
		if sink(n.Child, pred) {
			return true
		}
		if coveredBy(refs, n.Child.Schema()) {
			n.Child = &FilterNode{Cond: pred, Child: n.Child}
			return true
		}
		return false
	}
	return false
}

func passesThrough(p *ProjectNode, col string) bool {
	for _, ne := range p.Exprs {
		if ne.Name != col {
			continue
		}
		c, ok := ne.Expr.(*ColumnRef)
		return ok && c.Name == col
	}
	return false
}

func coveredBy(cols []string, schema Schema) bool {
	for _, c := range cols {
		if schema.IndexOf(c) < 0 {
			return false
		}
	}
	return true
}

// Translatable reports whether a predicate has a shape the data-source API
// can describe (and hence can live in ScanNode.Pushed): comparisons between
// one column and a literal, IN/NOT IN over literals, prefix LIKE, and
// AND/OR combinations of those over a single relation.
func Translatable(e Expr) bool {
	switch x := e.(type) {
	case *Comparison:
		return colLit(x.L, x.R) || colLit(x.R, x.L)
	case *In:
		if _, ok := x.E.(*ColumnRef); !ok {
			return false
		}
		for _, v := range x.Values {
			if _, ok := v.(*Literal); !ok {
				return false
			}
		}
		return true
	case *Like:
		if _, ok := x.E.(*ColumnRef); !ok {
			return false
		}
		// Only prefix patterns translate to a source filter.
		i := strings.IndexAny(x.Pattern, "%_")
		return i >= 0 && i == len(x.Pattern)-1 && x.Pattern[i] == '%'
	case *And:
		return Translatable(x.L) && Translatable(x.R)
	case *Or:
		return Translatable(x.L) && Translatable(x.R)
	}
	return false
}

func colLit(a, b Expr) bool {
	_, aCol := a.(*ColumnRef)
	_, bLit := b.(*Literal)
	return aCol && bLit
}

// pruneColumns walks top-down computing the columns each node must produce
// and sets ScanNode.Projection accordingly. required=nil means "all".
func pruneColumns(p LogicalPlan, required []string) LogicalPlan {
	switch n := p.(type) {
	case *ScanNode:
		if required == nil {
			return n
		}
		// Keep schema order, and include pushed-filter columns so the
		// source can evaluate them (SHC filters on the full row anyway,
		// but generic sources filter on materialized columns).
		need := make(map[string]bool, len(required))
		for _, c := range required {
			need[c] = true
		}
		for _, e := range n.Pushed {
			for _, c := range Columns(e) {
				need[c] = true
			}
		}
		var proj []string
		full := n.Relation.Schema()
		if n.Alias != "" {
			full = full.Qualify(n.Alias)
		}
		for _, f := range full {
			if need[f.Name] || need[bareName(f.Name)] {
				proj = append(proj, f.Name)
			}
		}
		if len(proj) == 0 && len(full) > 0 {
			// Count-only queries still need one column to count rows.
			proj = []string{full[0].Name}
		}
		n.Projection = proj
		return n
	case *FilterNode:
		if required == nil {
			n.Child = pruneColumns(n.Child, nil)
			return n
		}
		n.Child = pruneColumns(n.Child, union(required, Columns(n.Cond)))
		return n
	case *ProjectNode:
		var childReq []string
		for _, ne := range n.Exprs {
			childReq = union(childReq, Columns(ne.Expr))
		}
		if childReq == nil {
			childReq = []string{}
		}
		n.Child = pruneColumns(n.Child, childReq)
		return n
	case *JoinNode:
		var req []string
		if required != nil {
			req = required
		} else {
			for _, f := range n.Schema() {
				req = append(req, f.Name)
			}
		}
		for _, k := range n.LeftKeys {
			req = union(req, Columns(k))
		}
		for _, k := range n.RightKeys {
			req = union(req, Columns(k))
		}
		var leftReq, rightReq []string
		ls, rs := n.Left.Schema(), n.Right.Schema()
		for _, c := range req {
			if ls.IndexOf(c) >= 0 {
				leftReq = append(leftReq, c)
			}
			if rs.IndexOf(c) >= 0 {
				rightReq = append(rightReq, c)
			}
		}
		n.Left = pruneColumns(n.Left, leftReq)
		n.Right = pruneColumns(n.Right, rightReq)
		return n
	case *AggregateNode:
		var childReq []string
		for _, g := range n.GroupBy {
			childReq = union(childReq, Columns(g.Expr))
		}
		for _, a := range n.Aggs {
			if a.Arg != nil {
				childReq = union(childReq, Columns(a.Arg))
			}
		}
		if childReq == nil {
			childReq = []string{}
		}
		n.Child = pruneColumns(n.Child, childReq)
		return n
	case *SortNode:
		if required == nil {
			n.Child = pruneColumns(n.Child, nil)
			return n
		}
		childReq := required
		for _, o := range n.Orders {
			childReq = union(childReq, Columns(o.Expr))
		}
		n.Child = pruneColumns(n.Child, childReq)
		return n
	case *LimitNode:
		n.Child = pruneColumns(n.Child, required)
		return n
	case *UnionNode:
		// Union children share column names positionally (the builder
		// renames them), so the same requirement applies to each input.
		for i, c := range n.Inputs {
			n.Inputs[i] = pruneColumns(c, required)
		}
		return n
	}
	return p
}

func bareName(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}

// union merges two column lists; a nil first argument means "everything"
// and stays nil only when both are nil.
func union(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
