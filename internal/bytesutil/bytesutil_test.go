package bytesutil

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{math.MinInt64, -1, 0, 1, 42, math.MaxInt64} {
		got, err := DecodeInt64(EncodeInt64(v))
		if err != nil {
			t.Fatalf("DecodeInt64(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
	}
}

func TestInt64OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInt32OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b int32) bool {
		return (a < b) == (bytes.Compare(EncodeInt32(a), EncodeInt32(b)) < 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInt16OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b int16) bool {
		return (a < b) == (bytes.Compare(EncodeInt16(a), EncodeInt16(b)) < 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestInt8RoundTripAndOrder(t *testing.T) {
	for a := math.MinInt8; a <= math.MaxInt8; a++ {
		got, err := DecodeInt8(EncodeInt8(int8(a)))
		if err != nil || got != int8(a) {
			t.Fatalf("round trip %d: got %d err %v", a, got, err)
		}
		for b := math.MinInt8; b <= math.MaxInt8; b++ {
			ea, eb := EncodeInt8(int8(a)), EncodeInt8(int8(b))
			if (a < b) != (bytes.Compare(ea, eb) < 0) {
				t.Fatalf("order violated for %d, %d", a, b)
			}
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	for _, v := range []float64{math.Inf(-1), -math.MaxFloat64, -1.5, -0.0, 0.0, math.SmallestNonzeroFloat64, 1.5, math.MaxFloat64, math.Inf(1)} {
		got, err := DecodeFloat64(EncodeFloat64(v))
		if err != nil {
			t.Fatalf("DecodeFloat64(%v): %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %v: got %v", v, got)
		}
	}
}

func TestFloat64NaNRoundTrip(t *testing.T) {
	got, err := DecodeFloat64(EncodeFloat64(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got) {
		t.Errorf("NaN round trip: got %v", got)
	}
}

func TestFloat64OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea, eb := EncodeFloat64(a), EncodeFloat64(b)
		if a == b { // covers -0.0 vs 0.0 producing distinct but adjacent encodings
			return true
		}
		return (a < b) == (bytes.Compare(ea, eb) < 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32OrderPreserving(t *testing.T) {
	if err := quick.Check(func(a, b float32) bool {
		if a != a || b != b || a == b {
			return true
		}
		return (a < b) == (bytes.Compare(EncodeFloat32(a), EncodeFloat32(b)) < 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	if err := quick.Check(func(v float32) bool {
		got, err := DecodeFloat32(EncodeFloat32(v))
		if err != nil {
			return false
		}
		if v != v {
			return got != got
		}
		return got == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		got, err := DecodeUint64(EncodeUint64(v))
		return err == nil && got == v
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBool(t *testing.T) {
	for _, v := range []bool{true, false} {
		got, err := DecodeBool(EncodeBool(v))
		if err != nil || got != v {
			t.Errorf("bool round trip %v: got %v err %v", v, got, err)
		}
	}
	if bytes.Compare(EncodeBool(false), EncodeBool(true)) >= 0 {
		t.Error("false must sort before true")
	}
}

func TestDecodeLengthErrors(t *testing.T) {
	if _, err := DecodeInt64([]byte{1, 2}); err == nil {
		t.Error("DecodeInt64 short input: want error")
	}
	if _, err := DecodeInt32([]byte{1}); err == nil {
		t.Error("DecodeInt32 short input: want error")
	}
	if _, err := DecodeInt16([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeInt16 wrong-size input: want error")
	}
	if _, err := DecodeInt8(nil); err == nil {
		t.Error("DecodeInt8 nil input: want error")
	}
	if _, err := DecodeFloat64([]byte{0}); err == nil {
		t.Error("DecodeFloat64 short input: want error")
	}
	if _, err := DecodeFloat32([]byte{0}); err == nil {
		t.Error("DecodeFloat32 short input: want error")
	}
	if _, err := DecodeBool([]byte{0, 1}); err == nil {
		t.Error("DecodeBool long input: want error")
	}
	if _, err := DecodeUint64([]byte{}); err == nil {
		t.Error("DecodeUint64 empty input: want error")
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in, want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{nil, nil},
	}
	for _, c := range cases {
		if got := PrefixSuccessor(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixSuccessorProperty(t *testing.T) {
	// Every key with prefix p is < PrefixSuccessor(p).
	if err := quick.Check(func(p, suffix []byte) bool {
		succ := PrefixSuccessor(p)
		if succ == nil {
			return true
		}
		key := Concat(p, suffix)
		return bytes.Compare(key, succ) < 0 && bytes.Compare(p, succ) < 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSuccessor(t *testing.T) {
	if err := quick.Check(func(k []byte) bool {
		s := Successor(k)
		return bytes.Compare(k, s) < 0 && bytes.HasPrefix(s, k)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := []byte{1, 2, 3}
	c := Clone(orig)
	c[0] = 9
	if orig[0] != 1 {
		t.Error("Clone must not alias the source")
	}
	if Clone(nil) != nil {
		t.Error("Clone(nil) must be nil")
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]byte("a"), nil, []byte("bc"))
	if !bytes.Equal(got, []byte("abc")) {
		t.Errorf("Concat = %q", got)
	}
}
