// Package bytesutil provides order-preserving byte-array encodings for the
// primitive types SHC supports in HBase row keys and cells.
//
// HBase stores everything as raw byte arrays and compares them
// lexicographically. Java's (and Go's) native big-endian two's-complement
// integer encoding does NOT sort correctly for negative values, and IEEE 754
// floats do not sort at all under a byte-wise comparison. The encoders here
// apply the standard bias/flip transforms so that for any two values a and b
// of the same type,
//
//	a < b  ⇔  bytes.Compare(Encode(a), Encode(b)) < 0
//
// which is the property SHC's partition pruning and range-scan pushdown
// depend on (paper §IV-B, §VI-A.5).
package bytesutil

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeUint64 encodes v big-endian; unsigned values already sort correctly.
func EncodeUint64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// DecodeUint64 decodes a value produced by EncodeUint64.
func DecodeUint64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("bytesutil: uint64 needs 8 bytes, got %d", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// EncodeInt64 encodes v so the result sorts like the signed integer: the
// sign bit is flipped, biasing negatives below positives.
func EncodeInt64(v int64) []byte {
	return EncodeUint64(uint64(v) ^ (1 << 63))
}

// DecodeInt64 decodes a value produced by EncodeInt64.
func DecodeInt64(b []byte) (int64, error) {
	u, err := DecodeUint64(b)
	if err != nil {
		return 0, fmt.Errorf("bytesutil: int64: %w", err)
	}
	return int64(u ^ (1 << 63)), nil
}

// EncodeInt32 encodes v as 4 order-preserving bytes.
func EncodeInt32(v int32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(v)^(1<<31))
	return b
}

// DecodeInt32 decodes a value produced by EncodeInt32.
func DecodeInt32(b []byte) (int32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("bytesutil: int32 needs 4 bytes, got %d", len(b))
	}
	return int32(binary.BigEndian.Uint32(b) ^ (1 << 31)), nil
}

// EncodeInt16 encodes v as 2 order-preserving bytes.
func EncodeInt16(v int16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, uint16(v)^(1<<15))
	return b
}

// DecodeInt16 decodes a value produced by EncodeInt16.
func DecodeInt16(b []byte) (int16, error) {
	if len(b) != 2 {
		return 0, fmt.Errorf("bytesutil: int16 needs 2 bytes, got %d", len(b))
	}
	return int16(binary.BigEndian.Uint16(b) ^ (1 << 15)), nil
}

// EncodeInt8 encodes v as 1 order-preserving byte.
func EncodeInt8(v int8) []byte {
	return []byte{uint8(v) ^ (1 << 7)}
}

// DecodeInt8 decodes a value produced by EncodeInt8.
func DecodeInt8(b []byte) (int8, error) {
	if len(b) != 1 {
		return 0, fmt.Errorf("bytesutil: int8 needs 1 byte, got %d", len(b))
	}
	return int8(b[0] ^ (1 << 7)), nil
}

// EncodeFloat64 encodes v with the IEEE 754 total-order transform: positive
// floats get the sign bit set, negative floats have all bits flipped. NaNs
// sort above +Inf (as in HBase's OrderedBytes).
func EncodeFloat64(v float64) []byte {
	u := math.Float64bits(v)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u |= 1 << 63
	}
	return EncodeUint64(u)
}

// DecodeFloat64 decodes a value produced by EncodeFloat64.
func DecodeFloat64(b []byte) (float64, error) {
	u, err := DecodeUint64(b)
	if err != nil {
		return 0, fmt.Errorf("bytesutil: float64: %w", err)
	}
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u), nil
}

// EncodeFloat32 encodes v as 4 order-preserving bytes.
func EncodeFloat32(v float32) []byte {
	u := math.Float32bits(v)
	if u&(1<<31) != 0 {
		u = ^u
	} else {
		u |= 1 << 31
	}
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, u)
	return b
}

// DecodeFloat32 decodes a value produced by EncodeFloat32.
func DecodeFloat32(b []byte) (float32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("bytesutil: float32 needs 4 bytes, got %d", len(b))
	}
	u := binary.BigEndian.Uint32(b)
	if u&(1<<31) != 0 {
		u &^= 1 << 31
	} else {
		u = ^u
	}
	return math.Float32frombits(u), nil
}

// EncodeBool encodes false as 0x00 and true as 0x01.
func EncodeBool(v bool) []byte {
	if v {
		return []byte{1}
	}
	return []byte{0}
}

// DecodeBool decodes a value produced by EncodeBool.
func DecodeBool(b []byte) (bool, error) {
	if len(b) != 1 {
		return false, fmt.Errorf("bytesutil: bool needs 1 byte, got %d", len(b))
	}
	return b[0] != 0, nil
}

// EncodeString returns the raw UTF-8 bytes; byte-wise comparison of UTF-8
// already matches code-point order.
func EncodeString(v string) []byte { return []byte(v) }

// DecodeString decodes a value produced by EncodeString.
func DecodeString(b []byte) (string, error) { return string(b), nil }

// Compare compares two byte slices lexicographically, the way HBase orders
// row keys.
func Compare(a, b []byte) int { return bytes.Compare(a, b) }

// PrefixSuccessor returns the shortest key that is strictly greater than
// every key having prefix p, or nil when p is empty or all 0xFF (meaning
// "no upper bound"). It is used to turn an equality predicate on a rowkey
// prefix into a half-open scan range [p, PrefixSuccessor(p)).
func PrefixSuccessor(p []byte) []byte {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0xFF {
			out := make([]byte, i+1)
			copy(out, p[:i+1])
			out[i]++
			return out
		}
	}
	return nil
}

// Successor returns the immediate successor key of k under lexicographic
// order: k with a zero byte appended. Useful to convert an inclusive upper
// bound into an exclusive one.
func Successor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	return out
}

// Clone returns a copy of b, so callers can retain results that alias
// internal buffers.
func Clone(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Concat concatenates byte slices into a freshly allocated buffer.
func Concat(parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]byte, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
