package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func tinyParams() Params {
	return Params{Scales: []int{1}, Servers: 2, Executors: []int{2, 4}, Out: io.Discard}
}

func TestFig4ShapesHold(t *testing.T) {
	series, err := Fig4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 1 {
			t.Fatalf("%s: points = %d", s.Name, len(s.Points))
		}
		pt := s.Points[0]
		if pt.SHC <= 0 || pt.SparkSQL <= 0 {
			t.Errorf("%s: non-positive timings %+v", s.Name, pt)
		}
		if pt.SHC >= pt.SparkSQL {
			t.Errorf("%s: SHC (%.3fs) should beat SparkSQL (%.3fs)", s.Name, pt.SHC, pt.SparkSQL)
		}
	}
}

func TestFig5SHCMovesLess(t *testing.T) {
	series, err := Fig5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		pt := s.Points[0]
		if pt.SHC >= pt.SparkSQL {
			t.Errorf("%s: SHC moved %.1fKB vs SparkSQL %.1fKB", s.Name, pt.SHC, pt.SparkSQL)
		}
	}
}

func TestFig6RunsAllExecutorCounts(t *testing.T) {
	p := tinyParams()
	series, err := Fig6(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != len(p.Executors) {
			t.Errorf("%s: points = %d, want %d", s.Name, len(s.Points), len(p.Executors))
		}
	}
}

func TestFig7SHCWritesFaster(t *testing.T) {
	series, err := Fig7(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		pt := s.Points[0]
		if pt.SHC <= 0 || pt.SparkSQL <= 0 {
			t.Errorf("%s: non-positive timings %+v", s.Name, pt)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := make(map[string]Table2Row)
	for _, r := range rows {
		byKey[r.System+"/"+r.Coder] = r
	}
	if !byKey["SHC/PrimitiveType"].Supported || !byKey["SHC/Phoenix"].Supported || !byKey["SHC/Avro"].Supported {
		t.Error("all SHC coders must be supported")
	}
	if byKey["SparkSQL/Phoenix"].Supported || byKey["SparkSQL/Avro"].Supported {
		t.Error("baseline must not support Phoenix/Avro (the paper's x cells)")
	}
	// Memory ladder: Avro costs more than the native coder.
	if byKey["SHC/Avro"].MemoryMB <= byKey["SHC/PrimitiveType"].MemoryMB {
		t.Errorf("Avro memory (%.2f) should exceed native (%.2f)",
			byKey["SHC/Avro"].MemoryMB, byKey["SHC/PrimitiveType"].MemoryMB)
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := Ablation(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var full, noPush Table2RowLike
	for _, r := range rows {
		switch r.Config {
		case "full SHC":
			full = Table2RowLike{r.RowsFetched, r.RPCCalls}
		case "no filter pushdown":
			noPush = Table2RowLike{r.RowsFetched, r.RPCCalls}
		}
	}
	if noPush.rows <= full.rows {
		t.Errorf("disabling pushdown must fetch more rows: %d vs %d", noPush.rows, full.rows)
	}
}

type Table2RowLike struct{ rows, rpcs int64 }

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"SHC", "Phoenix Spark", "thread pool", "Multiple data coding"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

// TestStreamingComparisonShape pins the experiment's headline: both modes
// return identical row counts, the streamed LIMIT short-circuits rows the
// materialized path scans in full, and streamed peak memory is lower.
func TestStreamingComparisonShape(t *testing.T) {
	rows, err := StreamingComparison(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 2 queries x 2 modes", len(rows))
	}
	byKey := map[string]StreamingRow{}
	for _, r := range rows {
		byKey[r.Query+"/"+r.Mode] = r
	}
	for _, q := range []string{"limit", "filter-scan"} {
		s, m := byKey[q+"/streamed"], byKey[q+"/materialized"]
		if s.Rows == 0 || s.Rows != m.Rows {
			t.Errorf("%s: row counts differ or empty: streamed=%d materialized=%d", q, s.Rows, m.Rows)
		}
		if s.PeakMemMB >= m.PeakMemMB {
			t.Errorf("%s: streamed peak %.4fMB should be below materialized %.4fMB", q, s.PeakMemMB, m.PeakMemMB)
		}
		if s.Batches == 0 {
			t.Errorf("%s: streamed mode must report batches", q)
		}
		if m.Batches != 0 || m.ShortCircuited != 0 {
			t.Errorf("%s: materialized mode must keep pipeline counters zero", q)
		}
	}
	ls, lm := byKey["limit/streamed"], byKey["limit/materialized"]
	if ls.RowsScanned == 0 || ls.RowsScanned >= lm.RowsScanned {
		t.Errorf("streamed LIMIT scanned %d rows, materialized %d; pushdown must scan fewer",
			ls.RowsScanned, lm.RowsScanned)
	}
	if byKey["filter-scan/streamed"].PagesPrefetched == 0 {
		t.Error("streamed multi-page scan must prefetch pages")
	}
}
