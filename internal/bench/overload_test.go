package bench

import (
	"testing"
)

func TestOverloadShape(t *testing.T) {
	rows, err := Overload(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 scenarios", len(rows))
	}
	byName := map[string]OverloadRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if !r.Identical {
			t.Errorf("%s: results differ from the undisturbed run", r.Scenario)
		}
		if r.Rows != rows[0].Rows {
			t.Errorf("%s: %d rows, want %d", r.Scenario, r.Rows, rows[0].Rows)
		}
	}
	hedge := byName["straggler+hedge"]
	if hedge.Hedges == 0 || hedge.HedgeWins == 0 {
		t.Errorf("straggler+hedge fired %d hedges, %d wins; want both > 0", hedge.Hedges, hedge.HedgeWins)
	}
	// The whole point: hedging beats riding out the stalls.
	if plain := byName["straggler"]; hedge.QuerySec >= plain.QuerySec {
		t.Errorf("hedged straggler run (%.3fs) not faster than unhedged (%.3fs)", hedge.QuerySec, plain.QuerySec)
	}
}
