package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// IngestRow is one scenario of the write-path experiment.
type IngestRow struct {
	Scenario    string
	Cells       int     // cells written
	Seconds     float64 // wall time for the whole ingest
	CellsPerSec float64
	P50Us       int64 // per-operation latency percentiles (Put or Mutate)
	P99Us       int64
	Acked       int   // batches the cluster acknowledged (buffered scenarios)
	Deduped     int64 // retried batches the servers suppressed
	Faults      int   // injected faults that fired
	HotSplits   int64 // splits the hot-region detector drove
	Regions     int   // table regions when the ingest finished
	RowsFound   int   // rows a full scan sees afterwards
	RowsLost    int   // cells acked but absent from the final scan
	MaxApplies  int   // times the most-applied stamped batch applied (must be <= 1)
	Writers     int   // concurrent mutators (multi-writer scenarios; else 1)
	Distinct    int   // distinct row keys written (skewed scenarios collapse duplicates)
}

// ingestTable is the fixed shape every scenario writes into: one family,
// presplit four ways so the cells spread across servers and a crash mid-run
// still leaves live regions to retry against.
const ingestTable = "ingestbench"

func ingestCell(i int) hbase.Cell {
	return hbase.Cell{
		Row: []byte(fmt.Sprintf("row-%05d", i)), Family: "cf", Qualifier: "q",
		Timestamp: 1, Type: hbase.TypePut, Value: []byte(fmt.Sprintf("v-%05d", i)),
	}
}

func ingestSplits(n int) [][]byte {
	return [][]byte{
		[]byte(fmt.Sprintf("row-%05d", n/4)),
		[]byte(fmt.Sprintf("row-%05d", n/2)),
		[]byte(fmt.Sprintf("row-%05d", 3*n/4)),
	}
}

func bootIngestRig(p Params, janitor time.Duration, splits [][]byte) (*harness.Rig, error) {
	rig, err := harness.NewRig(harness.Config{
		System: harness.SHC, Servers: p.Servers, Scale: 1, SkipLoad: true,
		RPC: p.RPC, Janitor: janitor,
	})
	if err != nil {
		return nil, err
	}
	if err := rig.Client.CreateTable(hbase.TableDescriptor{Name: ingestTable, Families: []string{"cf"}}, splits); err != nil {
		rig.Close()
		return nil, err
	}
	return rig, nil
}

// applyCounter counts how often each (writer, seq, region) stamped batch was
// actually applied; dedup-suppressed replays do not count.
type applyCounter struct {
	mu      sync.Mutex
	applies map[string]int
}

func newApplyCounter(rig *harness.Rig) *applyCounter {
	a := &applyCounter{applies: make(map[string]int)}
	for _, rs := range rig.Cluster.Servers {
		rs.SetBatchAppliedHook(func(writer string, seq uint64, region string) {
			a.mu.Lock()
			a.applies[fmt.Sprintf("%s/%d@%s", writer, seq, region)]++
			a.mu.Unlock()
		})
	}
	return a
}

func (a *applyCounter) max() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := 0
	for _, n := range a.applies {
		if n > max {
			max = n
		}
	}
	return max
}

// finishIngestRow fills the post-run half of a row: percentiles from the
// per-op samples, throughput from the wall time, and the final scan that
// proves (or disproves) durability.
func finishIngestRow(rig *harness.Rig, row *IngestRow, samples []time.Duration, elapsed time.Duration) error {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	row.Seconds = elapsed.Seconds()
	if elapsed > 0 {
		row.CellsPerSec = float64(row.Cells) / elapsed.Seconds()
	}
	row.P50Us = percentile(samples, 0.50).Microseconds()
	row.P99Us = percentile(samples, 0.99).Microseconds()

	rig.Client.InvalidateRegions(ingestTable)
	results, err := rig.Client.ScanTable(ingestTable, &hbase.Scan{})
	if err != nil {
		return err
	}
	row.RowsFound = len(results)
	row.RowsLost = row.Cells - len(results)
	regions, err := rig.Client.Regions(ingestTable)
	if err != nil {
		return err
	}
	row.Regions = len(regions)
	return nil
}

// Ingest measures the write path end to end:
//
//   - unbuffered: one Put RPC per cell — the pre-BufferedMutator baseline.
//   - buffered: the same cells through a BufferedMutator; batching must
//     amortize per-RPC cost into >= 5x the unbuffered throughput.
//   - buffered+chaos: buffered ingest while seeded ack-lost faults discard
//     MultiPut replies, the table's lead region splits, and a region server
//     crashes mid-run. Exactly-once must hold (no acked cell lost, no
//     stamped batch applied twice) and Mutate p99 stays bounded.
//   - bulkload: presorted store-file ingest bypassing WAL and memstore.
//   - hot-key defense off/on: a skewed writer hammers one region; with the
//     janitor and hot threshold on, the detector must split the hot region.
func Ingest(p Params) ([]IngestRow, error) {
	p = p.withDefaults()
	const n = 2000
	var rows []IngestRow

	// --- unbuffered baseline ---
	{
		rig, err := bootIngestRig(p, 0, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest unbuffered: %w", err)
		}
		row := IngestRow{Scenario: "unbuffered", Cells: n}
		samples := make([]time.Duration, 0, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := rig.Client.Put(ingestTable, []hbase.Cell{ingestCell(i)}); err != nil {
				rig.Close()
				return nil, fmt.Errorf("bench: ingest unbuffered put %d: %w", i, err)
			}
			samples = append(samples, time.Since(t0))
		}
		err = finishIngestRow(rig, &row, samples, time.Since(start))
		rig.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// --- buffered ---
	{
		rig, err := bootIngestRig(p, 0, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest buffered: %w", err)
		}
		row := IngestRow{Scenario: "buffered", Cells: n}
		mut := rig.Client.NewMutator(ingestTable, hbase.MutatorConfig{WriterID: "bench-buffered"})
		ctx := context.Background()
		samples := make([]time.Duration, 0, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := mut.Mutate(ctx, ingestCell(i)); err != nil {
				rig.Close()
				return nil, fmt.Errorf("bench: ingest buffered mutate %d: %w", i, err)
			}
			samples = append(samples, time.Since(t0))
		}
		if err := mut.Close(ctx); err != nil {
			rig.Close()
			return nil, fmt.Errorf("bench: ingest buffered close: %w", err)
		}
		elapsed := time.Since(start)
		row.Acked = len(mut.AckedBatches())
		err = finishIngestRow(rig, &row, samples, elapsed)
		rig.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// --- buffered + chaos: ack loss, a split, and a crash mid-run ---
	{
		rig, err := bootIngestRig(p, 0, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest chaos: %w", err)
		}
		counter := newApplyCounter(rig)
		inj := rpc.NewFaultInjector(p.Seed,
			&rpc.FaultRule{Method: hbase.MethodMultiPut, FailProb: 0.15, DropReply: true, Err: rpc.ErrConnClosed},
		)
		rig.Cluster.Net.SetFaultInjector(inj)

		// Small flushes: enough MultiPut RPCs that the seeded ack loss fires
		// whatever the seed, and the percentile samples cover many flushes.
		row := IngestRow{Scenario: "buffered+chaos", Cells: n}
		mut := rig.Client.NewMutator(ingestTable, hbase.MutatorConfig{WriterID: "bench-chaos", FlushBytes: 1 << 10, MaxAttempts: 25})
		ctx := context.Background()
		samples := make([]time.Duration, 0, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			if i == n/3 {
				// The lead region splits underneath in-flight stamped batches.
				regions, err := rig.Client.Regions(ingestTable)
				if err == nil && len(regions) > 0 {
					if err := rig.Cluster.Master.SplitRegion(ingestTable, regions[0].ID); err != nil {
						rig.Close()
						return nil, fmt.Errorf("bench: ingest chaos split: %w", err)
					}
				}
			}
			if i == 2*n/3 {
				// A region server dies; its WAL (dedup stamps included) is
				// replayed on the survivors before the client's next retry.
				regions, err := rig.Client.Regions(ingestTable)
				if err == nil && len(regions) > 0 {
					victim := regions[len(regions)-1].Host
					if err := rig.Cluster.CrashServer(victim); err != nil {
						rig.Close()
						return nil, fmt.Errorf("bench: ingest chaos crash: %w", err)
					}
					if _, err := rig.Cluster.Master.CheckServers(); err != nil {
						rig.Close()
						return nil, fmt.Errorf("bench: ingest chaos recover: %w", err)
					}
				}
			}
			t0 := time.Now()
			if err := mut.Mutate(ctx, ingestCell(i)); err != nil {
				rig.Close()
				return nil, fmt.Errorf("bench: ingest chaos mutate %d: %w", i, err)
			}
			samples = append(samples, time.Since(t0))
		}
		if err := mut.Close(ctx); err != nil {
			rig.Close()
			return nil, fmt.Errorf("bench: ingest chaos close: %w", err)
		}
		elapsed := time.Since(start)
		row.Acked = len(mut.AckedBatches())
		row.Deduped = rig.Meter.Get(metrics.BatchesDeduped)
		row.Faults = inj.Fired()
		row.MaxApplies = counter.max()
		err = finishIngestRow(rig, &row, samples, elapsed)
		rig.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// --- bulk load ---
	{
		rig, err := bootIngestRig(p, 0, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest bulkload: %w", err)
		}
		row := IngestRow{Scenario: "bulkload", Cells: n}
		cells := make([]hbase.Cell, 0, n)
		for i := 0; i < n; i++ {
			cells = append(cells, ingestCell(i))
		}
		start := time.Now()
		if err := rig.Client.BulkLoad(ingestTable, cells); err != nil {
			rig.Close()
			return nil, fmt.Errorf("bench: ingest bulkload: %w", err)
		}
		err = finishIngestRow(rig, &row, []time.Duration{time.Since(start)}, time.Since(start))
		rig.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// --- hot-key skew, defense off then on ---
	for _, defended := range []bool{false, true} {
		name := "hotkey defense=off"
		janitor := time.Duration(0)
		if defended {
			name = "hotkey defense=on"
			janitor = time.Millisecond
		}
		// Every row lands in the table's first region: split points start at
		// "row-", the hot writer stays below them.
		rig, err := bootIngestRig(p, janitor, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest %s: %w", name, err)
		}
		if defended {
			// Low relative to the skewed write rate: every janitor pass sees
			// one flush's worth of cells or more land in the hot region, so
			// detection does not depend on tick alignment.
			rig.Cluster.Master.SetHotWriteThreshold(50)
		}
		row := IngestRow{Scenario: name, Cells: n}
		mut := rig.Client.NewMutator(ingestTable, hbase.MutatorConfig{WriterID: "bench-hot", FlushBytes: 2 << 10})
		ctx := context.Background()
		samples := make([]time.Duration, 0, n)
		start := time.Now()
		for i := 0; i < n; i++ {
			c := ingestCell(i)
			c.Row = []byte(fmt.Sprintf("hot-%05d", i)) // sorts before every split point
			t0 := time.Now()
			if err := mut.Mutate(ctx, c); err != nil {
				rig.Close()
				return nil, fmt.Errorf("bench: ingest %s mutate %d: %w", name, i, err)
			}
			samples = append(samples, time.Since(t0))
		}
		if err := mut.Close(ctx); err != nil {
			rig.Close()
			return nil, fmt.Errorf("bench: ingest %s close: %w", name, err)
		}
		elapsed := time.Since(start)
		row.Acked = len(mut.AckedBatches())
		if defended {
			// One deterministic pass after the ingest: however the ticker
			// interleaved, the accumulated write load is inspected once more
			// before the verdict.
			rig.Cluster.Master.JanitorPass()
		}
		row.HotSplits = rig.Meter.Get(metrics.HotSplits)
		err = finishIngestRow(rig, &row, samples, elapsed)
		rig.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}

	// --- zipfian multi-writer: skewed concurrent load ---
	// Several mutators write rows drawn from a Zipf distribution — the
	// monotonic/skewed key shape real event streams produce. The hot-region
	// detector splits whatever the skew concentrates; the docs' key-salting
	// note is the client-side fix for writers whose keys are strictly
	// monotonic (a salt prefix turns one hot region into W warm ones).
	{
		rig, err := bootIngestRig(p, time.Millisecond, ingestSplits(n))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest zipfian: %w", err)
		}
		rig.Cluster.Master.SetHotWriteThreshold(100)
		const writers = 4
		row := IngestRow{Scenario: "zipfian x" + fmt.Sprint(writers), Cells: n, Writers: writers}
		var (
			mu       sync.Mutex
			distinct = make(map[string]bool, n)
			samples  = make([]time.Duration, 0, n)
			acked    int
			wg       sync.WaitGroup
			werrs    = make([]error, writers)
		)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ctx := context.Background()
				// Distinct WriterIDs keep the dedup sequence spaces disjoint;
				// per-writer seeds keep the skew deterministic per seed.
				mut := rig.Client.NewMutator(ingestTable, hbase.MutatorConfig{
					WriterID: fmt.Sprintf("bench-zipf-%d", w), FlushBytes: 2 << 10, MaxAttempts: 25,
				})
				rng := rand.New(rand.NewSource(p.Seed + int64(w)))
				zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
				for i := 0; i < n/writers; i++ {
					key := fmt.Sprintf("zipf-%05d", zipf.Uint64())
					c := hbase.Cell{
						Row: []byte(key), Family: "cf", Qualifier: fmt.Sprintf("q%d", w),
						Timestamp: int64(i + 1), Type: hbase.TypePut,
						Value: []byte(fmt.Sprintf("w%d-%05d", w, i)),
					}
					t0 := time.Now()
					if err := mut.Mutate(ctx, c); err != nil {
						werrs[w] = fmt.Errorf("writer %d mutate %d: %w", w, i, err)
						_ = mut.Close(ctx)
						return
					}
					mu.Lock()
					samples = append(samples, time.Since(t0))
					distinct[key] = true
					acked++
					mu.Unlock()
				}
				if err := mut.Close(ctx); err != nil {
					werrs[w] = fmt.Errorf("writer %d close: %w", w, err)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range werrs {
			if err != nil {
				rig.Close()
				return nil, fmt.Errorf("bench: ingest zipfian: %w", err)
			}
		}
		rig.Cluster.Master.JanitorPass()
		row.Acked = acked
		row.Distinct = len(distinct)
		row.HotSplits = rig.Meter.Get(metrics.HotSplits)
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		row.Seconds = elapsed.Seconds()
		if elapsed > 0 {
			row.CellsPerSec = float64(row.Cells) / elapsed.Seconds()
		}
		row.P50Us = percentile(samples, 0.50).Microseconds()
		row.P99Us = percentile(samples, 0.99).Microseconds()
		// Duplicated keys collapse into versions of one row, so the scan is
		// audited against the distinct-key count, not the cell count.
		rig.Client.InvalidateRegions(ingestTable)
		results, err := rig.Client.ScanTable(ingestTable, &hbase.Scan{})
		if err != nil {
			rig.Close()
			return nil, err
		}
		row.RowsFound = len(results)
		row.RowsLost = row.Distinct - len(results)
		regions, err := rig.Client.Regions(ingestTable)
		if err != nil {
			rig.Close()
			return nil, err
		}
		row.Regions = len(regions)
		rig.Close()
		rows = append(rows, row)
	}

	fmt.Fprintf(p.Out, "\nIngest: write path throughput and durability (%d cells, %d servers, seed %d)\n", n, p.Servers, p.Seed)
	fmt.Fprintf(p.Out, "%-20s %8s %9s %11s %8s %8s %6s %7s %7s %9s %8s %7s %9s %7s %8s\n",
		"Scenario", "Cells", "Sec", "Cells/s", "p50us", "p99us", "Acked", "Dedup", "Faults", "HotSplit", "Regions", "Lost", "MaxApply", "Writers", "Distinct")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-20s %8d %9.3f %11.0f %8d %8d %6d %7d %7d %9d %8d %7d %9d %7d %8d\n",
			r.Scenario, r.Cells, r.Seconds, r.CellsPerSec, r.P50Us, r.P99Us, r.Acked, r.Deduped, r.Faults, r.HotSplits, r.Regions, r.RowsLost, r.MaxApplies, r.Writers, r.Distinct)
	}
	return rows, nil
}
