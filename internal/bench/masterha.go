package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
)

// MasterHARow is one scenario of the master-failover experiment.
type MasterHARow struct {
	Scenario string
	Masters  int // total master processes (1 active + N-1 hot standbys)

	Reads         int   // probe read attempts
	ReadErrors    int   // attempts that failed after client retries
	UnavailableMs int64 // longest failure-spanning gap between reads
	TakeoverMs    int64 // crash -> MasterFailover journaled (0 = no crash)

	AckedCells int // cells the buffered writer acked
	RowsFound  int // acked rows a full scan sees afterwards
	RowsLost   int // acked but absent — must be 0

	Rediscoveries int64 // client.master_rediscoveries
	Takeovers     int64 // master.takeovers
	FencedWrites  int64 // master.fenced_writes (zombie's post-revival attempts)
}

// haWriter streams cells through a BufferedMutator until stopped; every
// accepted mutation plus a clean Close is an acked write the final scan must
// account for.
type haWriter struct {
	stop     chan struct{}
	done     chan struct{}
	accepted int
	err      error
}

func startHAWriter(rig *harness.Rig, table string) *haWriter {
	w := &haWriter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		ctx := context.Background()
		mut := rig.Client.NewMutator(table, hbase.MutatorConfig{
			WriterID: "bench-ha", FlushBytes: 512, MaxAttempts: 40,
		})
		for i := 0; ; i++ {
			select {
			case <-w.stop:
				if err := mut.Close(ctx); err != nil {
					w.err = fmt.Errorf("close: %w", err)
				}
				return
			default:
			}
			c := hbase.Cell{
				Row: []byte(fmt.Sprintf("mut-%05d", i)), Family: "cf", Qualifier: "q",
				Timestamp: 1, Type: hbase.TypePut, Value: []byte(fmt.Sprintf("w-%05d", i)),
			}
			if err := mut.Mutate(ctx, c); err != nil {
				w.err = fmt.Errorf("mutate %d: %w", i, err)
				_ = mut.Close(ctx)
				return
			}
			w.accepted++
			time.Sleep(200 * time.Microsecond)
		}
	}()
	return w
}

// MasterHA measures control-plane availability across a master crash:
//
//   - steady: no failure — the baseline read/write profile.
//   - failover: two hot standbys; the active master is crashed mid-run under
//     live point reads and buffered ingest. The standby's watch-driven
//     takeover must keep read errors at zero and lose no acked write; the
//     revived zombie's coordination writes must die fenced.
//
// TakeoverMs is the crash-to-recovered window: from CrashMaster until the
// new master journals MasterFailover (meta rebuilt, split journals settled,
// duty loops re-armed).
func MasterHA(p Params) ([]MasterHARow, error) {
	p = p.withDefaults()
	var rows []MasterHARow
	for _, sc := range []struct {
		name    string
		masters int
		crash   bool
	}{
		{"steady", 1, false},
		{"failover", 3, true},
	} {
		rig, err := harness.NewRig(harness.Config{
			System: harness.SHC, Servers: p.Servers, Masters: sc.masters, SkipLoad: true,
			RPC: p.RPC, Heartbeat: 2 * time.Millisecond,
			Retry: hbase.RetryPolicy{MaxAttempts: 40},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: masterha %s: %w", sc.name, err)
		}
		row, err := runMasterHA(rig, sc.name, sc.masters, sc.crash)
		rig.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: masterha %s: %w", sc.name, err)
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(p.Out, "\nMasterHA: control-plane availability across a master crash (%d servers, seed %d)\n", p.Servers, p.Seed)
	fmt.Fprintf(p.Out, "%-10s %8s %7s %8s %9s %10s %7s %7s %6s %9s %7s %7s\n",
		"Scenario", "Masters", "Reads", "RdErrs", "UnavailMs", "TakeoverMs", "Acked", "Found", "Lost", "Rediscov", "Takeov", "Fenced")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-10s %8d %7d %8d %9d %10d %7d %7d %6d %9d %7d %7d\n",
			r.Scenario, r.Masters, r.Reads, r.ReadErrors, r.UnavailableMs, r.TakeoverMs,
			r.AckedCells, r.RowsFound, r.RowsLost, r.Rediscoveries, r.Takeovers, r.FencedWrites)
	}
	return rows, nil
}

func runMasterHA(rig *harness.Rig, name string, masters int, crash bool) (MasterHARow, error) {
	row := MasterHARow{Scenario: name, Masters: masters}
	const table = "mha"
	splits := [][]byte{[]byte("row-020"), []byte("row-040")}
	if err := rig.Client.CreateTable(hbase.TableDescriptor{Name: table, Families: []string{"cf"}}, splits); err != nil {
		return row, err
	}
	var cells []hbase.Cell
	var seeded [][]byte
	for i := 0; i < 60; i++ {
		r := []byte(fmt.Sprintf("row-%03d", i))
		seeded = append(seeded, r)
		cells = append(cells, hbase.Cell{
			Row: r, Family: "cf", Qualifier: "q",
			Timestamp: 1, Type: hbase.TypePut, Value: []byte("v"),
		})
	}
	if err := rig.Client.Put(table, cells); err != nil {
		return row, err
	}

	probe := rig.StartReadProbe(table, seeded[:8], hbase.ConsistencyStrong, time.Millisecond)
	writer := startHAWriter(rig, table)
	time.Sleep(40 * time.Millisecond)

	if crash {
		start := time.Now()
		zombie, err := rig.Cluster.CrashMaster()
		if err != nil {
			return row, err
		}
		deadline := time.Now().Add(5 * time.Second)
		for len(rig.Journal().Find(ops.EventMasterFailover)) == 0 {
			if time.Now().After(deadline) {
				return row, fmt.Errorf("no standby took over within 5s")
			}
			time.Sleep(time.Millisecond)
		}
		row.TakeoverMs = time.Since(start).Milliseconds()
		// Ride the new regime for a beat, then let the zombie wake up and
		// try to govern: its writes must die fenced.
		time.Sleep(40 * time.Millisecond)
		if err := rig.Cluster.Net.SetDown(zombie.Host(), false); err != nil {
			return row, err
		}
		_, _ = zombie.CheckServers()
		regions, err := rig.Client.Regions(table)
		if err == nil && len(regions) > 0 {
			_ = zombie.SplitRegion(table, regions[0].ID)
		}
	} else {
		time.Sleep(40 * time.Millisecond)
	}

	if err := finishHAWriter(writer); err != nil {
		return row, err
	}
	row.AckedCells = writer.accepted
	report := probe.Stop()
	row.Reads, row.ReadErrors, row.UnavailableMs = report.Reads, report.Errors, report.UnavailableMs

	rig.Client.InvalidateRegions(table)
	got, err := rig.Client.ScanTable(table, &hbase.Scan{StartRow: []byte("mut-"), StopRow: []byte("mut-~")})
	if err != nil {
		return row, err
	}
	row.RowsFound = len(got)
	row.RowsLost = row.AckedCells - len(got)
	row.Rediscoveries = rig.Meter.Get(metrics.MasterRediscoveries)
	row.Takeovers = rig.Meter.Get(metrics.MasterTakeovers)
	row.FencedWrites = rig.Meter.Get(metrics.MasterFencedWrites)
	return row, nil
}

func finishHAWriter(w *haWriter) error {
	close(w.stop)
	<-w.done
	return w.err
}
