package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

// TestTraceOverheadGate is the CI gate for zero-ish-cost observability:
// with the simulated network dominating wall time, tracing every RPC,
// task, and operator must cost under 5% on the streaming benchmark.
func TestTraceOverheadGate(t *testing.T) {
	if raceEnabled {
		// The race detector multiplies the cost of exactly the operations
		// tracing adds (mutexes, atomics), so a wall-clock percentage gate
		// measured under it reflects the detector, not the tracer. CI runs
		// this gate in its own non-race step.
		t.Skip("trace-overhead gate is meaningless under -race")
	}
	// Perf gates on shared hardware need a retry: a GC pause or a noisy
	// neighbor can inflate even the best-of-N minimum. One clean attempt
	// proves tracing is cheap; noise can only add time, never hide cost
	// across every attempt.
	const attempts = 3
	var metricsBuf bytes.Buffer
	var rows []TraceOverheadRow
	for attempt := 1; attempt <= attempts; attempt++ {
		metricsBuf.Reset()
		var err error
		rows, err = TraceOverhead(Params{
			Scales: []int{2}, Servers: 2, Runs: 9,
			Out: io.Discard, MetricsOut: &metricsBuf,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %d, want 2 queries", len(rows))
		}
		gated, breached := 0, false
		for _, r := range rows {
			if r.Spans == 0 {
				t.Errorf("%s: traced runs produced no spans", r.Query)
			}
			if r.UntracedMedian <= 0 || r.TracedMedian <= 0 {
				t.Errorf("%s: non-positive medians %+v", r.Query, r)
			}
			// Sub-millisecond queries sit at the scheduler/timer noise
			// floor, where 5% is single-digit microseconds — not
			// measurable. The gate applies to queries long enough for a
			// percentage to mean anything; the streamed full-table scan
			// below always qualifies.
			if r.UntracedMedian < time.Millisecond {
				continue
			}
			gated++
			if r.OverheadPct >= 5 {
				breached = true
				if attempt == attempts {
					t.Errorf("%s: tracing overhead %.2f%% breaches the 5%% gate on all %d attempts (untraced %s, traced %s)",
						r.Query, r.OverheadPct, attempts, r.UntracedMedian, r.TracedMedian)
				} else {
					t.Logf("%s: attempt %d measured %.2f%% overhead; retrying", r.Query, attempt, r.OverheadPct)
				}
			}
		}
		if gated == 0 {
			t.Fatal("no query ran long enough to gate; grow the scale so the scan exceeds 1ms")
		}
		if !breached {
			break
		}
	}

	// The -metrics hook emits a Prometheus-style exposition of the rig.
	exp := metricsBuf.String()
	for _, want := range []string{
		"# TYPE shc_rpc_calls counter",
		"# TYPE shc_rpc_latency_",
		"_bucket{le=",
		"shc_engine_query_latency_count",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%.800s", want, exp)
		}
	}
}
