package bench

import (
	"fmt"
	"reflect"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// PartitionRow is one scenario of the partition-safety experiment: the same
// streaming query run while region ownership is disturbed — a zombie server
// partitioned from the master, or a graceful drain — checked for result
// fidelity against the undisturbed run and annotated with the fencing and
// movement work it took.
type PartitionRow struct {
	Scenario    string
	QuerySec    float64
	Rows        int
	Identical   bool // results byte-identical to the fault-free run
	Partitions  int64
	Drops       int64
	Fenced      int64 // requests rejected with ErrFenced
	Moved       int64 // regions reassigned (zombie path, WAL replay)
	Drained     int64 // regions moved live (drain path, no replay)
	WALReplayed int64
	Retries     int64
}

// Partition measures the epoch-fencing guarantees under asymmetric network
// partitions (the split-brain scenario HBase resolves with ZooKeeper epochs,
// which the paper's connector inherits but never stresses). Every scenario
// reruns one multi-region streaming SELECT:
//
//   - fault-free: the control run whose results define correctness;
//   - zombie-partition: the server being read loses master connectivity only
//     — clients still reach it — is declared dead, and its regions are
//     reassigned with bumped epochs while the zombie still serves its stale
//     copy; fencing must route the query to the new owners;
//   - graceful-drain: the server being read is drained mid-page; its live
//     regions move with zero WAL replay and the stream resumes.
//
// All injection is seeded (Params.Seed), so a run is reproducible.
func Partition(p Params) ([]PartitionRow, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	const q = "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10"
	// Generous lease: it exists so the zombie scenario runs under the same
	// self-fencing regime as production, not to trigger during the bench —
	// data load at larger scales must never false-fence a healthy server.
	const lease = 2 * time.Second

	boot := func(fencing bool) (*harness.Rig, error) {
		cfg := harness.Config{
			System: harness.SHC, Servers: p.Servers, Scale: scale,
			ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
		}
		if fencing {
			cfg.Store = hbase.StoreConfig{ServerLease: lease, FenceReads: true}
			cfg.Heartbeat = lease / 20
		}
		return harness.NewRig(cfg)
	}

	// Control run: no faults.
	control, err := boot(false)
	if err != nil {
		return nil, fmt.Errorf("bench: partition control: %w", err)
	}
	want, err := control.Run(q)
	control.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: partition control: %w", err)
	}
	rows := []PartitionRow{{
		Scenario: "fault-free", QuerySec: want.Elapsed.Seconds(),
		Rows: len(want.Rows), Identical: true,
	}}

	scenarios := []struct {
		name    string
		fencing bool
		arm     func(rig *harness.Rig) *rpc.FaultInjector
	}{
		{"zombie-partition", true, func(rig *harness.Rig) *rpc.FaultInjector {
			regions, err := rig.Client.Regions("store_sales")
			if err != nil || len(regions) == 0 {
				return rpc.NewFaultInjector(p.Seed)
			}
			victim := regions[0].Host
			return rpc.NewFaultInjector(p.Seed, &rpc.FaultRule{
				Host: victim, Method: hbase.MethodFused, SkipFirst: 1, FailNext: 1,
				OnFire: func() {
					_ = rig.Cluster.PartitionServer(victim, hbase.PartitionFromMaster)
					_, _ = rig.Cluster.Master.CheckServers()
				},
			})
		}},
		{"graceful-drain", false, func(rig *harness.Rig) *rpc.FaultInjector {
			regions, err := rig.Client.Regions("store_sales")
			if err != nil || len(regions) == 0 {
				return rpc.NewFaultInjector(p.Seed)
			}
			victim := regions[0].Host
			return rpc.NewFaultInjector(p.Seed, &rpc.FaultRule{
				Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
				OnFire: func() { _ = rig.Cluster.Master.DrainServer(victim) },
			})
		}},
	}
	for _, sc := range scenarios {
		rig, err := boot(sc.fencing)
		if err != nil {
			return nil, fmt.Errorf("bench: partition %s: %w", sc.name, err)
		}
		rig.Cluster.Net.SetFaultInjector(sc.arm(rig))
		res, err := rig.Run(q)
		rig.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: partition %s: %w", sc.name, err)
		}
		rows = append(rows, PartitionRow{
			Scenario:    sc.name,
			QuerySec:    res.Elapsed.Seconds(),
			Rows:        len(res.Rows),
			Identical:   reflect.DeepEqual(want.Rows, res.Rows),
			Partitions:  res.Delta[metrics.PartitionsInjected],
			Drops:       res.Delta[metrics.PartitionDrops],
			Fenced:      res.Delta[metrics.FencedRejects],
			Moved:       res.Delta[metrics.RegionsReassigned],
			Drained:     res.Delta[metrics.RegionsDrained],
			WALReplayed: res.Delta[metrics.WALEntriesReplayed],
			Retries:     res.Delta[metrics.ClientRetries],
		})
	}

	fmt.Fprintf(p.Out, "\nPartition: epoch fencing under ownership changes (scale %d, seed %d)\n", scale, p.Seed)
	fmt.Fprintf(p.Out, "%-18s %10s %8s %10s %6s %6s %7s %6s %8s %8s %8s\n",
		"Scenario", "Query(s)", "Rows", "Identical", "Parts", "Drops", "Fenced", "Moved", "Drained", "WALplay", "Retries")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-18s %10.4f %8d %10v %6d %6d %7d %6d %8d %8d %8d\n",
			r.Scenario, r.QuerySec, r.Rows, r.Identical, r.Partitions, r.Drops, r.Fenced, r.Moved, r.Drained, r.WALReplayed, r.Retries)
	}
	return rows, nil
}
