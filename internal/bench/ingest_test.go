package bench

import (
	"io"
	"os"
	"strconv"
	"testing"
)

// TestIngestDurabilityGate is the CI regression gate for the crash-safe
// ingest path. It runs the full ingest matrix — ack-lost faults, a region
// split, and a region-server crash all land mid-run, with hot-key auto-split
// on — under the CHAOS_SEED the CI matrix sweeps, and demands:
//
//   - exactly-once: zero acked cells lost, no stamped batch applied twice;
//   - the faults actually bit (replies were dropped and retries deduped);
//   - client batching pays: buffered throughput >= 5x unbuffered;
//   - the chaos run's Mutate p99 stays bounded (retries, not stalls);
//   - the hot-region detector fires: the skewed run splits its hot region,
//     while the undefended control does not.
func TestIngestDurabilityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest durability gate skipped in -short mode")
	}
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = n
	}
	rows, err := Ingest(Params{Scales: []int{1}, Seed: seed, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]IngestRow, len(rows))
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	unbuffered, ok1 := byName["unbuffered"]
	buffered, ok2 := byName["buffered"]
	chaos, ok3 := byName["buffered+chaos"]
	bulk, ok4 := byName["bulkload"]
	hotOff, ok5 := byName["hotkey defense=off"]
	hotOn, ok6 := byName["hotkey defense=on"]
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
		t.Fatalf("missing scenarios in %v", rows)
	}

	// Durability: every scenario must end with every written cell readable.
	for _, r := range rows {
		if r.RowsLost != 0 {
			t.Errorf("%s: lost %d acked cells", r.Scenario, r.RowsLost)
		}
	}
	// Exactly-once under chaos: faults fired, retries were deduplicated, and
	// no stamped batch was ever applied twice anywhere.
	if chaos.Faults == 0 {
		t.Error("chaos run: no faults fired; the scenario was vacuous")
	}
	if chaos.Deduped == 0 {
		t.Error("chaos run: no retry was deduplicated; ack loss did not bite")
	}
	if chaos.MaxApplies > 1 {
		t.Errorf("chaos run: a stamped batch applied %d times, want <= 1", chaos.MaxApplies)
	}
	// The split and crash really happened mid-run: more regions than the
	// presplit four.
	if chaos.Regions <= 4 {
		t.Errorf("chaos run: regions = %d, want > 4 (split did not land)", chaos.Regions)
	}
	// Throughput: batching must amortize per-RPC cost at least fivefold.
	if buffered.CellsPerSec < 5*unbuffered.CellsPerSec {
		t.Errorf("buffered throughput %.0f cells/s < 5x unbuffered %.0f cells/s",
			buffered.CellsPerSec, unbuffered.CellsPerSec)
	}
	if bulk.CellsPerSec < unbuffered.CellsPerSec {
		t.Errorf("bulk load %.0f cells/s slower than unbuffered puts %.0f cells/s",
			bulk.CellsPerSec, unbuffered.CellsPerSec)
	}
	// Bounded tail under chaos: a Mutate call may absorb a retried flush but
	// never an unbounded stall.
	if chaos.P99Us <= 0 || chaos.P99Us > 500_000 {
		t.Errorf("chaos run: Mutate p99 = %dus, want (0, 500ms]", chaos.P99Us)
	}
	// Hot-key defense: detection and mitigation on, quiescence off.
	if hotOn.HotSplits < 1 {
		t.Errorf("defended hot-key run: hot splits = %d, want >= 1", hotOn.HotSplits)
	}
	if hotOn.Regions <= hotOff.Regions {
		t.Errorf("defended hot-key run: regions = %d, undefended = %d; defense did not split",
			hotOn.Regions, hotOff.Regions)
	}
	if hotOff.HotSplits != 0 {
		t.Errorf("undefended hot-key run: hot splits = %d, want 0", hotOff.HotSplits)
	}
}
