package bench

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// OverloadRow is one scenario of the tail-latency / overload experiment:
// the same streaming query under a straggler or saturation schedule,
// checked for result fidelity and annotated with the mitigation counters.
type OverloadRow struct {
	Scenario  string
	QuerySec  float64
	Rows      int
	Identical bool // results byte-identical to the undisturbed run
	Hedges    int64
	HedgeWins int64
	Shed      int64
	QueuePeak int64
	Retries   int64
}

// Overload measures the workload-management layer this reproduction adds on
// top of the paper's fault tolerance: deadline-aware hedged reads against a
// straggling region server, and admission control on a saturated one. Every
// scenario reruns one multi-region streaming SELECT:
//
//   - undisturbed: the control run whose results define correctness;
//   - straggler: one server stalls every other fused page 100ms; no
//     mitigation, so the stalls serialize into the query time;
//   - straggler+hedge: same stall schedule, but the client hedges reads
//     after 2ms — the speculative duplicate lands on a fast slot and wins,
//     collapsing tail latency;
//   - saturated: every server bounded to one in-flight RPC (1ms service
//     time) with a short queue, under concurrent queries; shed requests
//     back off and resend, and every query still completes.
//
// The straggler schedule is deterministic (LatencyEvery), so the comparison
// is reproducible run to run.
func Overload(p Params) ([]OverloadRow, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	const q = "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10"
	const stall = 100 * time.Millisecond

	boot := func(cfg harness.Config) (*harness.Rig, error) {
		cfg.System = harness.SHC
		cfg.Servers = p.Servers
		cfg.Scale = scale
		cfg.ExecutorsPerHost = p.ExecutorsPerHost
		cfg.RPC = p.RPC
		return harness.NewRig(cfg)
	}

	control, err := boot(harness.Config{})
	if err != nil {
		return nil, fmt.Errorf("bench: overload control: %w", err)
	}
	want, err := control.Run(q)
	control.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: overload control: %w", err)
	}
	rows := []OverloadRow{{
		Scenario: "undisturbed", QuerySec: want.Elapsed.Seconds(),
		Rows: len(want.Rows), Identical: true,
	}}

	// Straggler, with and without hedging: identical fault schedule, so the
	// delta in query time is attributable to the hedged reads alone.
	for _, hedged := range []bool{false, true} {
		cfg := harness.Config{}
		name := "straggler"
		if hedged {
			cfg.HedgeDelay = 2 * time.Millisecond
			name = "straggler+hedge"
		}
		rig, err := boot(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: overload %s: %w", name, err)
		}
		victim := ""
		if regions, err := rig.Client.Regions("store_sales"); err == nil && len(regions) > 0 {
			victim = regions[0].Host
		}
		rig.Cluster.Net.SetFaultInjector(rpc.NewFaultInjector(p.Seed, &rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, ExtraLatency: stall, LatencyEvery: 2,
		}))
		res, err := rig.Run(q)
		rig.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: overload %s: %w", name, err)
		}
		rows = append(rows, OverloadRow{
			Scenario:  name,
			QuerySec:  res.Elapsed.Seconds(),
			Rows:      len(res.Rows),
			Identical: reflect.DeepEqual(want.Rows, res.Rows),
			Hedges:    res.Delta[metrics.RPCHedges],
			HedgeWins: res.Delta[metrics.RPCHedgeWins],
			Retries:   res.Delta[metrics.ClientRetries],
		})
	}

	// Saturation: concurrent queries against admission-controlled servers.
	rig, err := boot(harness.Config{
		ServerLimits: hbase.ServerLimits{MaxInFlight: 1, MaxQueue: 2, ServiceTime: time.Millisecond},
		Retry:        hbase.RetryPolicy{MaxAttempts: 15, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: overload saturated: %w", err)
	}
	const concurrent = 4
	results := make([]harness.Result, concurrent)
	errs := make([]error, concurrent)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = rig.Run(q)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			rig.Close()
			return nil, fmt.Errorf("bench: overload saturated query %d: %w", i, err)
		}
	}
	identical := true
	for i := range results {
		identical = identical && reflect.DeepEqual(want.Rows, results[i].Rows)
	}
	rows = append(rows, OverloadRow{
		Scenario:  fmt.Sprintf("saturated(x%d)", concurrent),
		QuerySec:  elapsed.Seconds(),
		Rows:      len(results[0].Rows),
		Identical: identical,
		Shed:      rig.Meter.Get(metrics.ServerShed),
		QueuePeak: rig.Meter.Get(metrics.ServerQueuePeak),
		Retries:   rig.Meter.Get(metrics.ClientRetries),
	})
	rig.Close()

	fmt.Fprintf(p.Out, "\nOverload: stragglers and saturation under workload management (scale %d, seed %d)\n", scale, p.Seed)
	fmt.Fprintf(p.Out, "%-16s %10s %8s %10s %7s %9s %6s %9s %8s\n",
		"Scenario", "Query(s)", "Rows", "Identical", "Hedges", "HedgeWin", "Shed", "QueuePk", "CliRetry")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-16s %10.4f %8d %10v %7d %9d %6d %9d %8d\n",
			r.Scenario, r.QuerySec, r.Rows, r.Identical, r.Hedges, r.HedgeWins, r.Shed, r.QueuePeak, r.Retries)
	}
	return rows, nil
}
