package bench

import (
	"fmt"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
)

// ReplicaRow is one scenario of the read-replica availability experiment: a
// read probe hammering a table while the primary region server of the
// probed rows is crashed, measured for failed reads and the dark window
// between successful reads.
type ReplicaRow struct {
	Scenario      string
	Replication   int   // region copies, primary included
	Reads         int   // probe attempts
	Errors        int   // probe reads that failed outright
	StaleReads    int   // probe reads served (tagged) by a replica
	MaxStaleMs    int64 // largest staleness bound on any stale read
	UnavailableMs int64 // longest failure-spanning gap between successes
	Promotions    int64 // replicas promoted to primary
	Failovers     int64 // client same-round replica failovers
	WALReplayed   int64 // entries replayed during recovery
}

// Replica measures the read-unavailability window a primary crash opens,
// with and without region read replicas:
//
//   - timeline+replicas: RegionReplication=2, probe reads under timeline
//     consistency. The crash costs at most one extra RPC round per read —
//     the probe must see zero errors and a ~0ms window — and the master's
//     next heartbeat promotes the freshest replica without WAL-replay
//     blocking reads.
//   - strong-no-replicas: the pre-replica configuration. Reads against the
//     crashed primary fail until the master detects the death (a full
//     heartbeat interval away) and replays the WAL into a fresh copy; the
//     probe reports that window.
//
// Both scenarios crash the server at the same point in the probe's life and
// recover it after the same detection delay, so the windows are comparable.
func Replica(p Params) ([]ReplicaRow, error) {
	p = p.withDefaults()
	const (
		table       = "store_sales"
		interval    = 2 * time.Millisecond
		preCrash    = 30 * time.Millisecond
		detectDelay = 150 * time.Millisecond // heartbeat-detection stand-in
		postRecover = 60 * time.Millisecond
	)

	scenarios := []struct {
		name        string
		replication int
		consistency hbase.Consistency
	}{
		{"timeline+replicas", 2, hbase.ConsistencyTimeline},
		{"strong-no-replicas", 1, hbase.ConsistencyStrong},
	}
	var rows []ReplicaRow
	for _, sc := range scenarios {
		rig, err := harness.NewRig(harness.Config{
			System: harness.SHC, Servers: p.Servers, Scale: p.Scales[0],
			ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
			Store: hbase.StoreConfig{RegionReplication: sc.replication},
		})
		if err != nil {
			return nil, fmt.Errorf("bench: replica %s: boot: %w", sc.name, err)
		}
		ri, err := rig.Client.Regions(table)
		if err != nil || len(ri) == 0 {
			rig.Close()
			return nil, fmt.Errorf("bench: replica %s: locate regions: %w", sc.name, err)
		}
		victim := ri[0].Host
		// Probe rows that live in the victim's first region, so every probe
		// read exercises the crashed primary.
		seed, err := rig.Client.ScanRegion(ri[0], &hbase.Scan{Limit: 8})
		if err != nil || len(seed) == 0 {
			rig.Close()
			return nil, fmt.Errorf("bench: replica %s: seed probe rows: %w", sc.name, err)
		}
		probeRows := make([][]byte, len(seed))
		for i := range seed {
			probeRows[i] = seed[i].Row
		}

		before := rig.Meter.Snapshot()
		probe := rig.StartReadProbe(table, probeRows, sc.consistency, interval)
		time.Sleep(preCrash)
		if err := rig.Cluster.CrashServer(victim); err != nil {
			probe.Stop()
			rig.Close()
			return nil, fmt.Errorf("bench: replica %s: crash: %w", sc.name, err)
		}
		time.Sleep(detectDelay)
		if _, err := rig.Cluster.Master.CheckServers(); err != nil {
			probe.Stop()
			rig.Close()
			return nil, fmt.Errorf("bench: replica %s: recover: %w", sc.name, err)
		}
		time.Sleep(postRecover)
		report := probe.Stop()
		delta := metrics.Diff(before, rig.Meter.Snapshot())
		rig.Close()

		rows = append(rows, ReplicaRow{
			Scenario:      sc.name,
			Replication:   sc.replication,
			Reads:         report.Reads,
			Errors:        report.Errors,
			StaleReads:    report.StaleReads,
			MaxStaleMs:    report.MaxStaleMs,
			UnavailableMs: report.UnavailableMs,
			Promotions:    delta[metrics.Promotions],
			Failovers:     delta[metrics.ReplicaFailovers],
			WALReplayed:   delta[metrics.WALEntriesReplayed],
		})
	}

	fmt.Fprintf(p.Out, "\nReplica: read availability across a primary crash (scale %d, %d servers)\n", p.Scales[0], p.Servers)
	fmt.Fprintf(p.Out, "%-20s %5s %6s %7s %6s %9s %9s %6s %9s %8s\n",
		"Scenario", "Repl", "Reads", "Errors", "Stale", "MaxStale", "Unavail", "Promo", "Failover", "WALplay")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-20s %5d %6d %7d %6d %7dms %7dms %6d %9d %8d\n",
			r.Scenario, r.Replication, r.Reads, r.Errors, r.StaleReads, r.MaxStaleMs, r.UnavailableMs, r.Promotions, r.Failovers, r.WALReplayed)
	}
	return rows, nil
}
