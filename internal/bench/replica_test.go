package bench

import (
	"io"
	"testing"
)

// TestReplicaAvailabilityGate is the CI regression gate for region read
// replicas: across a primary crash, a read probe running under timeline
// consistency against a RegionReplication=2 table must see ZERO failed
// reads (a crashed primary costs one failover RPC, never an error), the
// master must promote at least one replica during recovery, and the
// replica-free strong configuration must show the nonzero unavailability
// window the replicas exist to remove.
func TestReplicaAvailabilityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("availability gate skipped in -short mode")
	}
	rows, err := Replica(Params{Scales: []int{1}, Out: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(rows))
	}
	repl, none := rows[0], rows[1]

	if repl.Reads == 0 || none.Reads == 0 {
		t.Fatalf("probe never read: replicated %d, replica-free %d", repl.Reads, none.Reads)
	}
	if repl.Errors != 0 {
		t.Errorf("replicated run: %d failed reads across the crash, want 0", repl.Errors)
	}
	if repl.Promotions < 1 {
		t.Errorf("replicated run: promotions = %d, want >= 1", repl.Promotions)
	}
	if repl.Failovers < 1 {
		t.Errorf("replicated run: replica failovers = %d, want >= 1 (crash must have been ridden over)", repl.Failovers)
	}
	if repl.StaleReads < 1 {
		t.Errorf("replicated run: stale reads = %d, want >= 1 (failover answers are replica-served)", repl.StaleReads)
	}
	// The replica-free configuration is the control: it must actually go
	// dark, or the zero window above proves nothing.
	if none.Errors == 0 {
		t.Error("replica-free run: no failed reads — the crash scenario is vacuous")
	}
	if none.UnavailableMs <= 0 {
		t.Errorf("replica-free run: unavailability window = %dms, want > 0", none.UnavailableMs)
	}
}
