package bench

import (
	"fmt"
	"reflect"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// ChaosRow is one scenario of the fault-tolerance experiment: the same
// streaming query run under an injected failure schedule, checked for
// result fidelity against the undisturbed run and annotated with the
// recovery work it took.
type ChaosRow struct {
	Scenario       string
	QuerySec       float64
	Rows           int
	Identical      bool // results byte-identical to the fault-free run
	FaultsInjected int64
	RegionsMoved   int64
	WALReplayed    int64
	ClientRetries  int64
	TasksRetried   int64
}

// Chaos measures how the stack behaves when region servers fail mid-query
// (the paper's §VI-B fault-tolerance claims, which its evaluation never
// stresses). Every scenario reruns one multi-region streaming SELECT:
//
//   - fault-free: the control run whose results define correctness;
//   - rs-crash: a region server dies at an exact fused page; the master's
//     heartbeat round replays WALs and reassigns its regions mid-query;
//   - flaky-net: seeded random connection kills on the scan path, recovered
//     purely by client retry with backoff.
//
// All injection is seeded (Params.Seed), so a run is reproducible.
func Chaos(p Params) ([]ChaosRow, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	const q = "SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10"

	boot := func() (*harness.Rig, error) {
		return harness.NewRig(harness.Config{
			System: harness.SHC, Servers: p.Servers, Scale: scale,
			ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
		})
	}

	// Control run: no faults.
	control, err := boot()
	if err != nil {
		return nil, fmt.Errorf("bench: chaos control: %w", err)
	}
	want, err := control.Run(q)
	control.Close()
	if err != nil {
		return nil, fmt.Errorf("bench: chaos control: %w", err)
	}
	rows := []ChaosRow{{
		Scenario: "fault-free", QuerySec: want.Elapsed.Seconds(),
		Rows: len(want.Rows), Identical: true,
	}}

	scenarios := []struct {
		name string
		arm  func(rig *harness.Rig) *rpc.FaultInjector
	}{
		{"rs-crash", func(rig *harness.Rig) *rpc.FaultInjector {
			regions, err := rig.Client.Regions("store_sales")
			if err != nil || len(regions) == 0 {
				return rpc.NewFaultInjector(p.Seed)
			}
			victim := regions[0].Host
			return rpc.NewFaultInjector(p.Seed, &rpc.FaultRule{
				Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
				OnFire: func() {
					_ = rig.Cluster.CrashServer(victim)
					_, _ = rig.Cluster.Master.CheckServers()
				},
			})
		}},
		{"flaky-net", func(rig *harness.Rig) *rpc.FaultInjector {
			return rpc.NewFaultInjector(p.Seed, &rpc.FaultRule{
				Method: hbase.MethodFused, FailProb: 0.1, Err: rpc.ErrConnClosed,
			})
		}},
	}
	for _, sc := range scenarios {
		rig, err := boot()
		if err != nil {
			return nil, fmt.Errorf("bench: chaos %s: %w", sc.name, err)
		}
		rig.Cluster.Net.SetFaultInjector(sc.arm(rig))
		res, err := rig.Run(q)
		rig.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: chaos %s: %w", sc.name, err)
		}
		rows = append(rows, ChaosRow{
			Scenario:       sc.name,
			QuerySec:       res.Elapsed.Seconds(),
			Rows:           len(res.Rows),
			Identical:      reflect.DeepEqual(want.Rows, res.Rows),
			FaultsInjected: res.Delta[metrics.FaultsInjected],
			RegionsMoved:   res.Delta[metrics.RegionsReassigned],
			WALReplayed:    res.Delta[metrics.WALEntriesReplayed],
			ClientRetries:  res.Delta[metrics.ClientRetries],
			TasksRetried:   res.Delta[metrics.TasksRetried],
		})
	}

	fmt.Fprintf(p.Out, "\nChaos: fault tolerance under injected failures (scale %d, seed %d)\n", scale, p.Seed)
	fmt.Fprintf(p.Out, "%-12s %10s %8s %10s %8s %9s %9s %9s %8s\n",
		"Scenario", "Query(s)", "Rows", "Identical", "Faults", "Moved", "WALplay", "CliRetry", "TaskRty")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-12s %10.4f %8d %10v %8d %9d %9d %9d %8d\n",
			r.Scenario, r.QuerySec, r.Rows, r.Identical, r.FaultsInjected, r.RegionsMoved, r.WALReplayed, r.ClientRetries, r.TasksRetried)
	}
	return rows, nil
}
