package bench

import (
	"testing"
	"time"

	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/plan"
)

// TestVectorSpeedupGate is the CI regression gate for columnar execution:
// full-scan aggregation through the vectorized kernel must stay at least 5x
// faster than the row-at-a-time path. Best-of-attempts absorbs scheduler
// noise on shared runners, mirroring the trace overhead gate.
func TestVectorSpeedupGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts per-row costs; the gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	const (
		attempts = 3
		want     = 5.0
	)
	best := 0.0
	for i := 0; i < attempts; i++ {
		speedup, err := FullScanAggSpeedup(200_000, 5)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: full-scan-agg speedup %.1fx", i+1, speedup)
		if speedup > best {
			best = speedup
		}
		if best >= want {
			return
		}
	}
	t.Fatalf("full-scan aggregation speedup %.1fx after %d attempts, want >= %.0fx", best, attempts, want)
}

// BenchmarkVectorVsRow compares the two execution models on the same
// full-scan aggregation, reporting rows/s and allocations so regressions in
// either throughput or per-batch churn show up in -benchmem diffs.
func BenchmarkVectorVsRow(b *testing.B) {
	const rows = 200_000
	rel := newColRelation(rows, 4)
	lp := aggKernelPlan(rel)
	for _, mode := range []struct {
		name string
		cfg  exec.CompileConfig
	}{
		{"vectorized", exec.CompileConfig{}},
		{"row", exec.CompileConfig{DisableVectorization: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kernelSamples(lp, mode.cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkVectorFullScanAgg runs the complete fused aggregation bench once
// per iteration — the `shcbench -exp vector` kernel shape at benchmark
// scale.
func BenchmarkVectorFullScanAgg(b *testing.B) {
	const rows = 400_000
	rel := newColRelation(rows, 4)
	lp := aggKernelPlan(rel)
	var elapsed time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		times, err := kernelSamples(lp, exec.CompileConfig{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		elapsed += times[0]
	}
	b.ReportMetric(float64(rows)*float64(b.N)/elapsed.Seconds(), "rows/s")
}

// TestFullScanAggResultStable pins the aggregation answer the bench relies
// on: both modes must produce the same single output row, so a speedup can
// never come from skipping work.
func TestFullScanAggResultStable(t *testing.T) {
	rel := newColRelation(10_000, 4)
	lp := aggKernelPlan(rel)
	var out [2][]plan.Row
	for i, cfg := range []exec.CompileConfig{{}, {DisableVectorization: true}} {
		phys, err := exec.CompileWith(plan.Optimize(lp()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := phys.Execute(kernelCtx())
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rows
	}
	if len(out[0]) != 1 || len(out[1]) != 1 {
		t.Fatalf("want one aggregate row from each mode, got %d and %d", len(out[0]), len(out[1]))
	}
	for c := range out[0][0] {
		if out[0][0][c] != out[1][0][c] {
			t.Fatalf("column %d diverged: vectorized %v vs row %v", c, out[0][0][c], out[1][0][c])
		}
	}
}
