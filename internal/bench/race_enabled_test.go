//go:build race

package bench

// raceEnabled reports whether this binary was built with -race, which
// multiplies every synchronization operation's cost and makes wall-clock
// performance gates meaningless.
const raceEnabled = true
