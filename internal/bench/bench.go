// Package bench regenerates every table and figure of the paper's §VII.
// Each experiment boots paired rigs (SHC and the Spark SQL baseline) that
// differ only in the connector, runs the same TPC-DS queries on both, and
// reports the series the paper plots. cmd/shcbench prints them; the
// repository-root benchmarks wrap them in testing.B.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/shc-go/shc/internal/core"
	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/tpcds"
)

// Params sizes an experiment run.
type Params struct {
	// Scales is the data-size axis (stands in for the paper's 5–30 GB).
	Scales []int
	// Servers is the cluster size; default 5 (the paper's testbed).
	Servers int
	// Executors is the Fig. 6 executor-count axis (total executors).
	Executors []int
	// ExecutorsPerHost for non-Fig6 experiments; default 2.
	ExecutorsPerHost int
	// Runs averages each measurement over this many runs; default 1.
	Runs int
	// RPC is the simulated network cost model; DefaultRPC() unless set.
	RPC rpc.Config
	// Seed drives the chaos experiment's fault injection; default 1.
	Seed int64
	// Out receives the printed tables (io.Discard when nil).
	Out io.Writer
	// MetricsOut, when set, receives a Prometheus-style exposition dump of
	// the experiment rig's metrics after the run (shcbench -metrics).
	MetricsOut io.Writer
}

func (p Params) withDefaults() Params {
	if len(p.Scales) == 0 {
		p.Scales = []int{1, 2, 3, 4, 5, 6} // the 5..30 GB axis
	}
	if p.Servers <= 0 {
		p.Servers = 5
	}
	if len(p.Executors) == 0 {
		p.Executors = []int{5, 10, 15, 20, 25}
	}
	if p.ExecutorsPerHost <= 0 {
		p.ExecutorsPerHost = 2
	}
	if p.Runs <= 0 {
		p.Runs = 1
	}
	if p.RPC == (rpc.Config{}) {
		p.RPC = DefaultRPC()
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Out == nil {
		p.Out = io.Discard
	}
	return p
}

// DefaultRPC charges a realistic-shaped cost per connection and call so
// connection caching and operator fusion surface in wall-clock numbers.
func DefaultRPC() rpc.Config {
	return rpc.Config{
		ConnLatency:    200 * time.Microsecond,
		CallLatency:    20 * time.Microsecond,
		BytesPerSecond: 1 << 30, // 1 GiB/s simulated NIC
	}
}

// Point is one measured (x, SHC, SparkSQL) sample.
type Point struct {
	X        int
	SHC      float64
	SparkSQL float64
}

// Series is one experiment's output for one query.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

func (s Series) print(w io.Writer) {
	fmt.Fprintf(w, "\n%s  (x=%s, y=%s)\n", s.Name, s.XLabel, s.YLabel)
	fmt.Fprintf(w, "%12s %14s %14s %8s\n", s.XLabel, "SHC", "SparkSQL", "ratio")
	for _, pt := range s.Points {
		ratio := 0.0
		if pt.SHC > 0 {
			ratio = pt.SparkSQL / pt.SHC
		}
		fmt.Fprintf(w, "%12d %14.3f %14.3f %7.1fx\n", pt.X, pt.SHC, pt.SparkSQL, ratio)
	}
}

func bootPair(p Params, scale, executorsPerHost int, opts core.Options) (*harness.Rig, *harness.Rig, error) {
	shcRig, err := harness.NewRig(harness.Config{
		System: harness.SHC, Servers: p.Servers, Scale: scale,
		ExecutorsPerHost: executorsPerHost, RPC: p.RPC, Options: opts,
	})
	if err != nil {
		return nil, nil, err
	}
	baseRig, err := harness.NewRig(harness.Config{
		System: harness.SparkSQL, Servers: p.Servers, Scale: scale,
		ExecutorsPerHost: executorsPerHost, RPC: p.RPC, Options: opts,
	})
	if err != nil {
		shcRig.Close()
		return nil, nil, err
	}
	return shcRig, baseRig, nil
}

// timeQuery averages query wall time over p.Runs.
func timeQuery(p Params, rig *harness.Rig, query string) (time.Duration, map[string]int64, error) {
	var total time.Duration
	var delta map[string]int64
	for i := 0; i < p.Runs; i++ {
		res, err := rig.Run(query)
		if err != nil {
			return 0, nil, err
		}
		total += res.Elapsed
		delta = res.Delta
	}
	return total / time.Duration(p.Runs), delta, nil
}

// Fig4 reproduces "Evaluation of query performance": query latency versus
// data size for q39a and q39b on both systems.
func Fig4(p Params) ([]Series, error) {
	p = p.withDefaults()
	queries := map[string]string{"q39a": tpcds.Q39a(), "q39b": tpcds.Q39b()}
	out := []Series{
		{Name: "Fig 4a: TPC-DS q39a query latency", XLabel: "scale", YLabel: "seconds"},
		{Name: "Fig 4b: TPC-DS q39b query latency", XLabel: "scale", YLabel: "seconds"},
	}
	for _, scale := range p.Scales {
		shcRig, baseRig, err := bootPair(p, scale, p.ExecutorsPerHost, core.Options{})
		if err != nil {
			return nil, err
		}
		for qi, qname := range []string{"q39a", "q39b"} {
			sd, _, err := timeQuery(p, shcRig, queries[qname])
			if err != nil {
				return nil, fmt.Errorf("bench: %s on SHC: %w", qname, err)
			}
			bd, _, err := timeQuery(p, baseRig, queries[qname])
			if err != nil {
				return nil, fmt.Errorf("bench: %s on SparkSQL: %w", qname, err)
			}
			out[qi].Points = append(out[qi].Points, Point{X: scale, SHC: sd.Seconds(), SparkSQL: bd.Seconds()})
		}
		shcRig.Close()
		baseRig.Close()
	}
	for _, s := range out {
		s.print(p.Out)
	}
	return out, nil
}

// Fig5 reproduces "Shuffle cost": kilobytes moved across the simulated
// network (source fetch + shuffle) versus data size for q39a and q39b.
// In this reproduction both engines filter before joining, so the pure
// shuffle stage is comparable; the baseline's extra movement — exactly what
// the paper attributes to missing pushdown — shows up on the fetch side,
// and the figure reports their sum.
func Fig5(p Params) ([]Series, error) {
	p = p.withDefaults()
	queries := map[string]string{"q39a": tpcds.Q39a(), "q39b": tpcds.Q39b()}
	out := []Series{
		{Name: "Fig 5a: TPC-DS q39a data movement", XLabel: "scale", YLabel: "KB"},
		{Name: "Fig 5b: TPC-DS q39b data movement", XLabel: "scale", YLabel: "KB"},
	}
	moved := func(d map[string]int64) float64 {
		return float64(d[metrics.ShuffleBytes]+d[metrics.RPCBytesReceived]) / 1024
	}
	for _, scale := range p.Scales {
		shcRig, baseRig, err := bootPair(p, scale, p.ExecutorsPerHost, core.Options{})
		if err != nil {
			return nil, err
		}
		for qi, qname := range []string{"q39a", "q39b"} {
			_, sd, err := timeQuery(p, shcRig, queries[qname])
			if err != nil {
				return nil, err
			}
			_, bd, err := timeQuery(p, baseRig, queries[qname])
			if err != nil {
				return nil, err
			}
			out[qi].Points = append(out[qi].Points, Point{X: scale, SHC: moved(sd), SparkSQL: moved(bd)})
		}
		shcRig.Close()
		baseRig.Close()
	}
	for _, s := range out {
		s.print(p.Out)
	}
	return out, nil
}

// Fig6 reproduces "Effect of executor number": q39a/q39b latency as the
// total executor count grows on a fixed data size.
func Fig6(p Params) ([]Series, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	queries := map[string]string{"q39a": tpcds.Q39a(), "q39b": tpcds.Q39b()}
	out := []Series{
		{Name: fmt.Sprintf("Fig 6a: q39a latency vs executors (scale %d)", scale), XLabel: "executors", YLabel: "seconds"},
		{Name: fmt.Sprintf("Fig 6b: q39b latency vs executors (scale %d)", scale), XLabel: "executors", YLabel: "seconds"},
	}
	for _, execs := range p.Executors {
		perHost := execs / p.Servers
		if perHost <= 0 {
			perHost = 1
		}
		shcRig, baseRig, err := bootPair(p, scale, perHost, core.Options{})
		if err != nil {
			return nil, err
		}
		for qi, qname := range []string{"q39a", "q39b"} {
			sd, _, err := timeQuery(p, shcRig, queries[qname])
			if err != nil {
				return nil, err
			}
			bd, _, err := timeQuery(p, baseRig, queries[qname])
			if err != nil {
				return nil, err
			}
			out[qi].Points = append(out[qi].Points, Point{X: execs, SHC: sd.Seconds(), SparkSQL: bd.Seconds()})
		}
		shcRig.Close()
		baseRig.Close()
	}
	for _, s := range out {
		s.print(p.Out)
	}
	return out, nil
}

// Fig7 reproduces "Evaluation of write performance": time to write the
// q39a tables (4a) and the q38 tables (4b/q38) into HBase through each
// system's write path, versus data size.
func Fig7(p Params) ([]Series, error) {
	p = p.withDefaults()
	tableSets := [][]string{
		{"warehouse", "item", "date_dim", "inventory"}, // q39a's four tables
		{"date_dim", "store_sales", "web_sales"},       // q38's tables
	}
	out := []Series{
		{Name: "Fig 7a: write time, q39a tables", XLabel: "scale", YLabel: "seconds"},
		{Name: "Fig 7b: write time, q38 tables", XLabel: "scale", YLabel: "seconds"},
	}
	for _, scale := range p.Scales {
		for ti, tables := range tableSets {
			var times [2]time.Duration
			for si, sys := range []harness.System{harness.SHC, harness.SparkSQL} {
				var total time.Duration
				for run := 0; run < p.Runs; run++ {
					rig, err := harness.NewRig(harness.Config{
						System: sys, Servers: p.Servers, Scale: scale,
						ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC, SkipLoad: true,
					})
					if err != nil {
						return nil, err
					}
					for _, table := range tables {
						d, err := rig.LoadTable(table, rig.Data.Rows(table))
						if err != nil {
							rig.Close()
							return nil, fmt.Errorf("bench: write %s via %s: %w", table, sys, err)
						}
						total += d
					}
					rig.Close()
				}
				times[si] = total / time.Duration(p.Runs)
			}
			out[ti].Points = append(out[ti].Points, Point{
				X: scale, SHC: times[0].Seconds(), SparkSQL: times[1].Seconds(),
			})
		}
	}
	for _, s := range out {
		s.print(p.Out)
	}
	return out, nil
}

// Table2Row is one row of the encoding-comparison table.
type Table2Row struct {
	System    string
	Coder     string
	QuerySec  float64
	WriteSec  float64
	MemoryMB  float64
	Supported bool
}

// Table2 reproduces "Performance on different encoding types": query time,
// write time, and engine memory for the Native (PrimitiveType), Phoenix,
// and Avro coders under SHC, plus the baseline's single generic path.
func Table2(p Params) ([]Table2Row, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	var rows []Table2Row
	measure := func(sys harness.System, coder string) (Table2Row, error) {
		row := Table2Row{System: sys.String(), Coder: coder, Supported: true}
		// Write time: load the q39a tables from scratch.
		rig, err := harness.NewRig(harness.Config{
			System: sys, Servers: p.Servers, Scale: scale, Coder: coder,
			ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC, SkipLoad: true,
		})
		if err != nil {
			return row, err
		}
		defer rig.Close()
		var wtotal time.Duration
		for _, table := range tpcds.TableNames {
			d, err := rig.LoadTable(table, rig.Data.Rows(table))
			if err != nil {
				return row, err
			}
			wtotal += d
		}
		row.WriteSec = wtotal.Seconds()
		qd, delta, err := timeQuery(p, rig, tpcds.Q39a())
		if err != nil {
			return row, err
		}
		row.QuerySec = qd.Seconds()
		row.MemoryMB = float64(delta[metrics.MemoryCharged]) / (1 << 20)
		return row, nil
	}
	for _, coder := range []string{"PrimitiveType", "Phoenix", "Avro"} {
		row, err := measure(harness.SHC, coder)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 SHC/%s: %w", coder, err)
		}
		rows = append(rows, row)
	}
	// The baseline supports only its native generic path; Phoenix and Avro
	// data are unreadable to it (the × cells of the paper's Table II).
	nat, err := measure(harness.SparkSQL, "")
	if err != nil {
		return nil, fmt.Errorf("bench: table2 SparkSQL: %w", err)
	}
	nat.Coder = "Native"
	rows = append(rows, nat)
	rows = append(rows,
		Table2Row{System: "SparkSQL", Coder: "Phoenix"},
		Table2Row{System: "SparkSQL", Coder: "Avro"},
	)

	fmt.Fprintf(p.Out, "\nTable II: performance on different encoding types (scale %d)\n", scale)
	fmt.Fprintf(p.Out, "%-10s %-14s %12s %12s %12s\n", "System", "Type", "Query(s)", "Write(s)", "Memory(MB)")
	for _, r := range rows {
		if !r.Supported {
			fmt.Fprintf(p.Out, "%-10s %-14s %12s %12s %12s\n", r.System, r.Coder, "x", "x", "x")
			continue
		}
		fmt.Fprintf(p.Out, "%-10s %-14s %12.3f %12.3f %12.2f\n", r.System, r.Coder, r.QuerySec, r.WriteSec, r.MemoryMB)
	}
	return rows, nil
}

// AblationRow is one configuration of the design-choice ablation.
type AblationRow struct {
	Config      string
	QuerySec    float64
	RowsFetched int64
	RPCCalls    int64
	Conns       int64
}

// Ablation quantifies each SHC optimization the paper describes (§VI-A) by
// turning them off one at a time and rerunning q39a.
func Ablation(p Params) ([]AblationRow, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	configs := []struct {
		name    string
		opts    core.Options
		noCache bool
	}{
		{"full SHC", core.Options{}, false},
		{"no partition pruning", core.Options{DisablePartitionPruning: true}, false},
		{"no filter pushdown", core.Options{DisableFilterPushdown: true}, false},
		{"no operator fusion", core.Options{DisableOperatorFusion: true}, false},
		{"no connection cache", core.Options{}, true},
		{"full-key pruning (future work)", core.Options{FullKeyPruning: true}, false},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		rig, err := harness.NewRig(harness.Config{
			System: harness.SHC, Servers: p.Servers, Scale: scale,
			ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC, Options: cfg.opts,
			DisableConnCache: cfg.noCache,
		})
		if err != nil {
			return nil, err
		}
		d, delta, err := timeQuery(p, rig, tpcds.Q39a())
		rig.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", cfg.name, err)
		}
		rows = append(rows, AblationRow{
			Config:      cfg.name,
			QuerySec:    d.Seconds(),
			RowsFetched: delta[metrics.RowsReturned],
			RPCCalls:    delta[metrics.RPCCalls],
			Conns:       delta[metrics.ConnectionsCreated],
		})
	}
	fmt.Fprintf(p.Out, "\nAblation: SHC optimizations on q39a (scale %d)\n", scale)
	fmt.Fprintf(p.Out, "%-32s %12s %14s %8s %8s\n", "Configuration", "Query(s)", "RowsFetched", "RPCs", "Conns")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-32s %12.3f %14d %8d %8d\n", r.Config, r.QuerySec, r.RowsFetched, r.RPCCalls, r.Conns)
	}
	return rows, nil
}

// StreamingRow is one measurement of the streaming-vs-materialized
// comparison: the same query executed through the fused batch pipeline and
// through the Volcano-style materialized operators.
type StreamingRow struct {
	Query           string
	Mode            string // "streamed" or "materialized"
	QuerySec        float64
	Rows            int
	RowsPerSec      float64
	PeakMemMB       float64 // high-water decoded-row memory (MemoryPeak)
	Batches         int64   // batches streamed through pipelines
	PagesPrefetched int64   // fused pages fetched while a prior page decoded
	ShortCircuited  int64   // rows dropped unprocessed once LIMIT was met
	RowsScanned     int64   // rows the region servers walked for the query
}

// StreamingComparison measures the batch-pipeline execution path against the
// materialized one on an SHC rig: a LIMIT query that should short-circuit
// the scan, and a residual-filter scan that streams the whole table but
// releases batches as it goes. The materialized rows keep the same counters
// for contrast (their pipeline counters stay zero).
func StreamingComparison(p Params) ([]StreamingRow, error) {
	p = p.withDefaults()
	scale := p.Scales[len(p.Scales)/2]
	queries := []struct{ name, sql string }{
		{"limit", "SELECT inv_item_sk, inv_quantity_on_hand FROM inventory LIMIT 50"},
		{"filter-scan", "SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 10"},
	}
	var rows []StreamingRow
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"streamed", false}, {"materialized", true}} {
		for _, q := range queries {
			rig, err := harness.NewRig(harness.Config{
				System: harness.SHC, Servers: p.Servers, Scale: scale,
				ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
				DisablePipelining: mode.disable,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: streaming %s/%s: %w", mode.name, q.name, err)
			}
			res, err := rig.Run(q.sql)
			rig.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: streaming %s/%s: %w", mode.name, q.name, err)
			}
			d, delta, n := res.Elapsed, res.Delta, len(res.Rows)
			row := StreamingRow{
				Query:           q.name,
				Mode:            mode.name,
				QuerySec:        d.Seconds(),
				Rows:            n,
				PeakMemMB:       float64(delta[metrics.MemoryPeak]) / (1 << 20),
				Batches:         delta[metrics.BatchesStreamed],
				PagesPrefetched: delta[metrics.PagesPrefetched],
				ShortCircuited:  delta[metrics.RowsShortCircuited],
				RowsScanned:     delta[metrics.RowsScanned],
			}
			if d > 0 {
				row.RowsPerSec = float64(n) / d.Seconds()
			}
			rows = append(rows, row)
		}
	}
	fmt.Fprintf(p.Out, "\nStreaming vs materialized execution (scale %d)\n", scale)
	fmt.Fprintf(p.Out, "%-12s %-13s %10s %8s %12s %10s %8s %10s %8s %9s\n",
		"Query", "Mode", "Query(s)", "Rows", "Rows/s", "PeakMB", "Batches", "Prefetch", "ShortCkt", "Scanned")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-12s %-13s %10.4f %8d %12.0f %10.3f %8d %10d %8d %9d\n",
			r.Query, r.Mode, r.QuerySec, r.Rows, r.RowsPerSec, r.PeakMemMB, r.Batches, r.PagesPrefetched, r.ShortCircuited, r.RowsScanned)
	}
	return rows, nil
}

// Table1 prints the static feature-comparison matrix of the paper's
// Table I.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "\nTable I: comparison between SHC and other systems")
	rows := [][]string{
		{"Feature", "SHC", "Spark SQL", "Phoenix Spark", "Huawei Spark HBase"},
		{"SQL", "yes", "yes", "yes", "yes"},
		{"Dataframe API", "yes", "yes", "yes", "yes"},
		{"In-memory", "yes", "yes", "yes", "yes"},
		{"Query planner", "yes", "yes", "yes", "yes"},
		{"Query optimizer", "yes", "yes", "yes", "yes"},
		{"Multiple data coding", "yes", "yes", "no", "no"},
		{"Concurrent query execution", "thread pool", "user-level process", "user-level process", "user-level process"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-12s %-20s %-20s %-20s\n", r[0], r[1], r[2], r[3], r[4])
	}
}
