package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// VectorRow is one measurement of the vectorized-vs-row comparison.
type VectorRow struct {
	Section    string  // "kernel" (exec layer, columnar source) or "e2e" (full rig)
	Query      string
	Mode       string  // "vectorized" or "row"
	Rows       int64   // input rows processed per run
	RowsPerSec float64 // input rows / best run
	P50Ms      float64
	P99Ms      float64
	Speedup    float64 // best-of row time / best-of vectorized time (vectorized rows only)
}

// VectorResult is the vector experiment's output, serialized to
// BENCH_vector.json by cmd/shcbench.
type VectorResult struct {
	Rows []VectorRow
	// FullScanAggSpeedup is the headline number: kernel full-scan
	// aggregation throughput, vectorized over row-at-a-time.
	FullScanAggSpeedup float64
}

// Vector measures columnar vectorized execution against the row-at-a-time
// path. The kernel section runs the executor over a natively columnar
// in-memory source — the analogue of decoding an HBase CellBlock page
// straight into vectors versus boxing every cell into rows — so it isolates
// the execution model. The e2e section reruns the comparison through the
// full rig (simulated cluster, fused paged RPC) on TPC-DS store_sales.
func Vector(p Params) (*VectorResult, error) {
	p = p.withDefaults()
	samples := p.Runs
	if samples < 5 {
		samples = 5
	}
	res := &VectorResult{}

	// --- kernel: exec layer over a columnar source ---
	const kernelRows = 400_000
	rel := newColRelation(kernelRows, 4)
	kernelQueries := []struct {
		name string
		lp   func() plan.LogicalPlan
	}{
		{"full-scan-agg", aggKernelPlan(rel)},
		{"filter-project", func() plan.LogicalPlan {
			return &plan.ProjectNode{
				Exprs: []plan.NamedExpr{{Expr: plan.Col("k"), Name: "k"}},
				Child: &plan.FilterNode{
					Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("q"), R: plan.Lit(int64(10))},
					Child: &plan.ScanNode{Relation: rel},
				},
			}
		}},
	}
	for _, q := range kernelQueries {
		var best [2]time.Duration
		for mi, mode := range []struct {
			name    string
			disable bool
		}{{"vectorized", false}, {"row", true}} {
			times, err := kernelSamples(q.lp, exec.CompileConfig{DisableVectorization: mode.disable}, samples)
			if err != nil {
				return nil, fmt.Errorf("bench: vector kernel %s/%s: %w", q.name, mode.name, err)
			}
			best[mi] = times[0]
			res.Rows = append(res.Rows, VectorRow{
				Section:    "kernel",
				Query:      q.name,
				Mode:       mode.name,
				Rows:       kernelRows,
				RowsPerSec: float64(kernelRows) / times[0].Seconds(),
				P50Ms:      percentile(times, 0.50).Seconds() * 1e3,
				P99Ms:      percentile(times, 0.99).Seconds() * 1e3,
			})
		}
		speedup := best[1].Seconds() / best[0].Seconds()
		res.Rows[len(res.Rows)-2].Speedup = speedup
		if q.name == "full-scan-agg" {
			res.FullScanAggSpeedup = speedup
		}
	}

	// --- e2e: full rig on store_sales ---
	scale := p.Scales[len(p.Scales)/2]
	e2eQueries := []struct{ name, sql string }{
		{"e2e-agg", "SELECT count(1), sum(ss_quantity), min(ss_item_sk), max(ss_item_sk) FROM store_sales"},
		{"e2e-filter", "SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 10"},
	}
	for _, q := range e2eQueries {
		var best [2]time.Duration
		for mi, mode := range []struct {
			name    string
			disable bool
		}{{"vectorized", false}, {"row", true}} {
			rig, err := harness.NewRig(harness.Config{
				System: harness.SHC, Servers: p.Servers, Scale: scale,
				ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
				DisableVectorization: mode.disable,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: vector e2e %s/%s: %w", q.name, mode.name, err)
			}
			times := make([]time.Duration, 0, samples)
			var scanned int64
			for i := 0; i < samples; i++ {
				run, err := rig.Run(q.sql)
				if err != nil {
					rig.Close()
					return nil, fmt.Errorf("bench: vector e2e %s/%s: %w", q.name, mode.name, err)
				}
				times = append(times, run.Elapsed)
				scanned = run.Delta[metrics.RowsScanned]
			}
			rig.Close()
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			best[mi] = times[0]
			res.Rows = append(res.Rows, VectorRow{
				Section:    "e2e",
				Query:      q.name,
				Mode:       mode.name,
				Rows:       scanned,
				RowsPerSec: float64(scanned) / times[0].Seconds(),
				P50Ms:      percentile(times, 0.50).Seconds() * 1e3,
				P99Ms:      percentile(times, 0.99).Seconds() * 1e3,
			})
		}
		res.Rows[len(res.Rows)-2].Speedup = best[1].Seconds() / best[0].Seconds()
	}

	fmt.Fprintf(p.Out, "\nVectorized vs row-at-a-time execution (kernel: %d rows; e2e: scale %d)\n", kernelRows, scale)
	fmt.Fprintf(p.Out, "%-8s %-16s %-12s %10s %14s %10s %10s %9s\n",
		"Section", "Query", "Mode", "Rows", "Rows/s", "p50(ms)", "p99(ms)", "Speedup")
	for _, r := range res.Rows {
		su := ""
		if r.Speedup > 0 {
			su = fmt.Sprintf("%.1fx", r.Speedup)
		}
		fmt.Fprintf(p.Out, "%-8s %-16s %-12s %10d %14.0f %10.3f %10.3f %9s\n",
			r.Section, r.Query, r.Mode, r.Rows, r.RowsPerSec, r.P50Ms, r.P99Ms, su)
	}
	return res, nil
}

// aggKernelPlan builds the full-scan aggregation over rel — one pass of
// Count/Sum/Avg/Min/Max with no grouping, the shape the fused AggPipeline
// collapses to partial merges.
func aggKernelPlan(rel *colRelation) func() plan.LogicalPlan {
	return func() plan.LogicalPlan {
		return &plan.AggregateNode{
			Aggs: []plan.AggExpr{
				{Kind: plan.AggCount, Name: "n"},
				{Kind: plan.AggSum, Arg: plan.Col("q"), Name: "sum_q"},
				{Kind: plan.AggAvg, Arg: plan.Col("price"), Name: "avg_price"},
				{Kind: plan.AggMin, Arg: plan.Col("q"), Name: "min_q"},
				{Kind: plan.AggMax, Arg: plan.Col("q"), Name: "max_q"},
			},
			Child: &plan.ScanNode{Relation: rel},
		}
	}
}

// FullScanAggSpeedup measures the headline kernel number in isolation:
// best-of-n full-scan aggregation time on the row path over the vectorized
// path. CI gates on it staying above the acceptance threshold.
func FullScanAggSpeedup(rows, samples int) (float64, error) {
	rel := newColRelation(rows, 4)
	lp := aggKernelPlan(rel)
	vec, err := kernelSamples(lp, exec.CompileConfig{}, samples)
	if err != nil {
		return 0, err
	}
	row, err := kernelSamples(lp, exec.CompileConfig{DisableVectorization: true}, samples)
	if err != nil {
		return 0, err
	}
	return row[0].Seconds() / vec[0].Seconds(), nil
}

// kernelCtx builds a local execution context for kernel measurements.
func kernelCtx() *exec.Context {
	m := metrics.NewRegistry()
	return &exec.Context{
		Ctx:       context.Background(),
		Scheduler: exec.NewScheduler([]string{"local"}, 4, m),
		Meter:     m,
	}
}

// kernelSamples compiles and executes lp n times, returning sorted run times.
func kernelSamples(lp func() plan.LogicalPlan, cfg exec.CompileConfig, n int) ([]time.Duration, error) {
	ctx := kernelCtx()
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		phys, err := exec.CompileWith(plan.Optimize(lp()), cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := phys.Execute(ctx); err != nil {
			return nil, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times, nil
}

// percentile reads q from sorted times.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// colRelation is a natively columnar in-memory source: partitions hold
// typed arrays, so the vector path appends values straight into vectors
// while the row path must box every cell — the same asymmetry the HBase
// relation has between CellBlock decoding and row materialization.
type colRelation struct {
	schema plan.Schema
	parts  []*colPartition
}

type colPartition struct {
	index int
	k     []int64
	q     []int64
	price []float64
}

func newColRelation(rows, parts int) *colRelation {
	r := &colRelation{schema: plan.Schema{
		{Name: "k", Type: plan.TypeInt64},
		{Name: "q", Type: plan.TypeInt64},
		{Name: "price", Type: plan.TypeFloat64},
	}}
	per := rows / parts
	for pi := 0; pi < parts; pi++ {
		p := &colPartition{index: pi}
		for i := 0; i < per; i++ {
			g := int64(pi*per + i)
			p.k = append(p.k, g)
			p.q = append(p.q, g%97)
			p.price = append(p.price, float64(g%1000)/4)
		}
		r.parts = append(r.parts, p)
	}
	return r
}

// Name implements datasource.Relation.
func (r *colRelation) Name() string { return "vbench" }

// Schema implements datasource.Relation.
func (r *colRelation) Schema() plan.Schema { return r.schema }

// BuildScan implements datasource.PrunedFilteredScan (filters are left to
// the engine, keeping a residual predicate in the pipeline).
func (r *colRelation) BuildScan(required []string, _ []datasource.Filter) ([]datasource.Partition, error) {
	cols := make([]int, len(required))
	for i, name := range required {
		cols[i] = r.schema.IndexOf(name)
		if cols[i] < 0 {
			return nil, fmt.Errorf("bench: no column %q", name)
		}
	}
	out := make([]datasource.Partition, len(r.parts))
	for i, p := range r.parts {
		out[i] = &colScan{rel: r, part: p, cols: cols}
	}
	return out, nil
}

// UnhandledFilters implements datasource.PrunedFilteredScan.
func (r *colRelation) UnhandledFilters(fs []datasource.Filter) []datasource.Filter { return fs }

type colScan struct {
	rel  *colRelation
	part *colPartition
	cols []int
}

// Index implements datasource.Partition.
func (s *colScan) Index() int { return s.part.index }

// PreferredHost implements datasource.Partition.
func (s *colScan) PreferredHost() string { return "" }

func (s *colScan) cell(col, i int) any {
	switch col {
	case 0:
		return s.part.k[i]
	case 1:
		return s.part.q[i]
	default:
		return s.part.price[i]
	}
}

// Compute implements datasource.Partition: the fully boxed row form.
func (s *colScan) Compute(context.Context) ([]plan.Row, error) {
	rows := make([]plan.Row, len(s.part.k))
	for i := range rows {
		row := make(plan.Row, len(s.cols))
		for j, c := range s.cols {
			row[j] = s.cell(c, i)
		}
		rows[i] = row
	}
	return rows, nil
}

// ComputeBatches implements datasource.BatchScan: boxed rows in bounded
// batches — what the row pipeline consumes.
func (s *colScan) ComputeBatches(_ context.Context, opts datasource.BatchOptions, yield func([]plan.Row) error) error {
	size := opts.BatchSize
	if size <= 0 {
		size = 1024
	}
	n := len(s.part.k)
	if opts.LimitHint > 0 && opts.LimitHint < n {
		n = opts.LimitHint
	}
	batch := make([]plan.Row, 0, size)
	for at := 0; at < n; at += size {
		end := at + size
		if end > n {
			end = n
		}
		batch = batch[:0]
		for i := at; i < end; i++ {
			row := make(plan.Row, len(s.cols))
			for j, c := range s.cols {
				row[j] = s.cell(c, i)
			}
			batch = append(batch, row)
		}
		if err := yield(batch); err != nil {
			if errors.Is(err, datasource.ErrStopBatches) {
				return nil
			}
			return err
		}
	}
	return nil
}

// ComputeVectors implements datasource.VectorScan: typed appends, no boxing.
func (s *colScan) ComputeVectors(_ context.Context, opts datasource.BatchOptions, yield func(*plan.Batch) error) error {
	size := opts.BatchSize
	if size <= 0 {
		size = 1024
	}
	schema := make(plan.Schema, len(s.cols))
	for j, c := range s.cols {
		schema[j] = s.rel.schema[c]
	}
	batch := plan.NewBatch(schema)
	n := len(s.part.k)
	if opts.LimitHint > 0 && opts.LimitHint < n {
		n = opts.LimitHint
	}
	for at := 0; at < n; at += size {
		end := at + size
		if end > n {
			end = n
		}
		batch.Reset()
		for j, c := range s.cols {
			vec := batch.Cols[j]
			switch c {
			case 0:
				for i := at; i < end; i++ {
					vec.AppendInt64(s.part.k[i])
				}
			case 1:
				for i := at; i < end; i++ {
					vec.AppendInt64(s.part.q[i])
				}
			default:
				for i := at; i < end; i++ {
					vec.AppendFloat64(s.part.price[i])
				}
			}
		}
		batch.SetLen(end - at)
		if err := yield(batch); err != nil {
			if errors.Is(err, datasource.ErrStopBatches) {
				return nil
			}
			return err
		}
	}
	return nil
}
