package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/trace"
)

// TraceOverheadRow is one query's traced-vs-untraced comparison.
type TraceOverheadRow struct {
	Query          string
	Runs           int
	UntracedMedian time.Duration
	TracedMedian   time.Duration
	// OverheadPct compares the *fastest* run of each mode:
	// 100 × (min(traced) − min(untraced)) / min(untraced). GC pauses and
	// scheduler preemption only ever add time, so the minimum of several
	// runs is the one the noise missed — the cleanest estimate of what each
	// mode intrinsically costs. Medians are reported alongside for context
	// but swing ±30% run to run on a busy host. Negative when noise still
	// edges the traced minimum under the untraced one.
	OverheadPct float64
	// Spans is the span count of the last traced run — evidence the traced
	// side actually traced.
	Spans int
}

// TraceOverhead measures what end-to-end tracing costs: the streaming
// benchmark queries run alternately with and without a trace in the
// context, on one warmed rig, and the medians are compared. Untraced and
// traced runs interleave so drift (cache warmth, scheduling) hits both
// sides equally. CI gates on the overhead staying under 5%.
func TraceOverhead(p Params) ([]TraceOverheadRow, error) {
	p = p.withDefaults()
	runs := p.Runs
	if runs < 5 {
		runs = 5 // medians from too few samples gate on noise
	}
	scale := p.Scales[len(p.Scales)/2]
	rig, err := harness.NewRig(harness.Config{
		System: harness.SHC, Servers: p.Servers, Scale: scale,
		ExecutorsPerHost: p.ExecutorsPerHost, RPC: p.RPC,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: trace-overhead: %w", err)
	}
	defer rig.Close()

	queries := []struct{ name, sql string }{
		{"limit", "SELECT inv_item_sk, inv_quantity_on_hand FROM inventory LIMIT 50"},
		{"filter-scan", "SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 10"},
	}
	var rows []TraceOverheadRow
	for _, q := range queries {
		// Warm the rig (region locations, connection cache) off the clock.
		for i := 0; i < 2; i++ {
			if _, err := rig.Run(q.sql); err != nil {
				return nil, fmt.Errorf("bench: trace-overhead warmup %s: %w", q.name, err)
			}
		}
		untraced := make([]time.Duration, 0, runs)
		traced := make([]time.Duration, 0, runs)
		spans := 0
		runUntraced := func() error {
			res, err := rig.Run(q.sql)
			if err != nil {
				return fmt.Errorf("bench: trace-overhead %s: %w", q.name, err)
			}
			untraced = append(untraced, res.Elapsed)
			return nil
		}
		runTraced := func() error {
			tr := trace.New(q.name)
			res, err := rig.RunContext(trace.NewContext(context.Background(), tr), q.sql)
			if err != nil {
				return fmt.Errorf("bench: trace-overhead %s (traced): %w", q.name, err)
			}
			tr.Finish()
			traced = append(traced, res.Elapsed)
			spans = 0
			tr.Walk(func(int, *trace.Span) { spans++ })
			return nil
		}
		for i := 0; i < runs; i++ {
			// Alternate which side goes first so systematic within-pair
			// drift (GC debt left by the previous run, cache warmth)
			// cannot be attributed to tracing.
			first, second := runUntraced, runTraced
			if i%2 == 1 {
				first, second = runTraced, runUntraced
			}
			if err := first(); err != nil {
				return nil, err
			}
			if err := second(); err != nil {
				return nil, err
			}
		}
		// Run-to-run drift (GC cycles, scheduler preemption) only ever adds
		// time, and on a busy host it adds tens of percent — far more than
		// ~100 spans cost. The minimum over several runs is the sample the
		// noise missed, so the overhead estimate compares minima.
		um, tm := median(untraced), median(traced)
		row := TraceOverheadRow{
			Query: q.name, Runs: runs,
			UntracedMedian: um, TracedMedian: tm, Spans: spans,
		}
		if u := minDur(untraced); u > 0 {
			row.OverheadPct = 100 * float64(minDur(traced)-u) / float64(u)
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(p.Out, "\nTracing overhead (scale %d, %d runs, medians)\n", scale, runs)
	fmt.Fprintf(p.Out, "%-12s %12s %12s %10s %7s\n", "Query", "Untraced", "Traced", "Overhead", "Spans")
	for _, r := range rows {
		fmt.Fprintf(p.Out, "%-12s %12s %12s %9.2f%% %7d\n",
			r.Query, r.UntracedMedian.Round(time.Microsecond), r.TracedMedian.Round(time.Microsecond),
			r.OverheadPct, r.Spans)
	}
	if p.MetricsOut != nil {
		if err := rig.Meter.WriteExposition(p.MetricsOut); err != nil {
			return nil, fmt.Errorf("bench: trace-overhead exposition: %w", err)
		}
	}
	return rows, nil
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func minDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}
