package metrics

import (
	"context"
	"time"
)

// scopeKey carries a per-query Registry through the context.
type scopeKey struct{}

// WithScope returns ctx carrying scope as the query-scoped registry.
// Instrumented layers that write metrics through Scoped meters will record
// into scope in addition to their own registry, so a query's counters can
// be read in isolation even while other queries run concurrently against
// the same cluster.
func WithScope(ctx context.Context, scope *Registry) context.Context {
	if scope == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope)
}

// ScopeFrom returns the context's query-scoped registry, or nil.
func ScopeFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(scopeKey{}).(*Registry)
	return s
}

// Meter is a dual-sink metrics writer: every write lands in the layer's
// own registry (the cluster- or session-wide one existing tests and
// experiments read) and, when the context carries one, in the query-scoped
// registry as well. It is a small value type — build it once per operation
// with Scoped and pass it down, rather than re-resolving the context on
// every counter bump.
type Meter struct {
	primary *Registry
	scoped  *Registry
}

// Scoped builds a Meter writing to primary plus the context's scoped
// registry. When the scope is absent or is primary itself, writes land
// only once.
func Scoped(ctx context.Context, primary *Registry) Meter {
	s := ScopeFrom(ctx)
	if s == primary {
		s = nil
	}
	return Meter{primary: primary, scoped: s}
}

// Direct builds a Meter writing only to r — for call sites with no
// context (compile-time metering, legacy paths).
func Direct(r *Registry) Meter { return Meter{primary: r} }

// Add increments the named counter by delta in both sinks.
func (m Meter) Add(name string, delta int64) {
	m.primary.Add(name, delta)
	m.scoped.Add(name, delta)
}

// Inc increments the named counter by one in both sinks.
func (m Meter) Inc(name string) { m.Add(name, 1) }

// SetMax raises the named gauge to v in both sinks.
func (m Meter) SetMax(name string, v int64) {
	m.primary.SetMax(name, v)
	m.scoped.SetMax(name, v)
}

// AddPeak adjusts a current-usage gauge and its high-water mark in both
// sinks. Because the scoped registry starts from zero for each query, its
// peak is exact for that query — unlike the shared registry, whose peak is
// the high-water mark across every run since the last Reset.
func (m Meter) AddPeak(cur, peak string, delta int64) {
	m.primary.AddPeak(cur, peak, delta)
	m.scoped.AddPeak(cur, peak, delta)
}

// Observe records d into the named histogram in both sinks.
func (m Meter) Observe(name string, d time.Duration) {
	m.primary.Observe(name, d)
	m.scoped.Observe(name, d)
}

// Primary returns the meter's always-on sink.
func (m Meter) Primary() *Registry { return m.primary }
