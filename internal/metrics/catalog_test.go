package metrics

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// declaredMetricNames parses this package's sources and returns the string
// value of every exported metric-name constant.
func declaredMetricNames(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	names := make(map[string]string) // const identifier -> string value
	for _, file := range []string{"metrics.go", "histogram.go"} {
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if !id.IsExported() || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					v, err := strconv.Unquote(lit.Value)
					if err != nil {
						t.Fatal(err)
					}
					names[id.Name] = v
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("parsed no metric constants")
	}
	return names
}

// TestCatalogCoversConstants: every declared metric-name constant appears
// in the catalog exactly once, and nothing in the catalog is orphaned.
func TestCatalogCoversConstants(t *testing.T) {
	declared := declaredMetricNames(t)
	catalog := make(map[string]CatalogEntry)
	for _, e := range Catalog() {
		if _, dup := catalog[e.Name]; dup {
			t.Errorf("catalog lists %q twice", e.Name)
		}
		catalog[e.Name] = e
	}

	for ident, name := range declared {
		want := name
		if strings.HasSuffix(name, ".") {
			// A histogram-family prefix is cataloged with its placeholder.
			want = name + "<method>"
		}
		if _, ok := catalog[want]; !ok {
			t.Errorf("constant %s = %q missing from Catalog()", ident, want)
		}
		delete(catalog, want)
	}
	for name := range catalog {
		t.Errorf("catalog entry %q matches no declared constant", name)
	}
}

// TestCatalogNamingConvention: every metric follows subsystem.noun_verb —
// a lowercase subsystem prefix, a dot, and lowercase snake_case.
func TestCatalogNamingConvention(t *testing.T) {
	re := regexp.MustCompile(`^[a-z]+\.[a-z][a-z0-9_]*(\.<method>)?$`)
	kinds := map[string]bool{"counter": true, "gauge": true, "histogram": true}
	for _, e := range Catalog() {
		name := strings.Replace(e.Name, ".<method>", "", 1)
		if !re.MatchString(name) && !re.MatchString(e.Name) {
			t.Errorf("metric %q violates subsystem.noun_verb naming", e.Name)
		}
		if !kinds[e.Kind] {
			t.Errorf("metric %q has unknown kind %q", e.Name, e.Kind)
		}
		if e.Help == "" {
			t.Errorf("metric %q has no help text", e.Name)
		}
	}
}

// TestCatalogMatchesDoc: docs/METRICS.md is exactly what WriteCatalog
// renders. Regenerate with UPDATE_METRICS_DOC=1.
func TestCatalogMatchesDoc(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "docs", "METRICS.md")
	if os.Getenv("UPDATE_METRICS_DOC") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_METRICS_DOC=1 go test ./internal/metrics/ -run Catalog)", err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("docs/METRICS.md is stale; regenerate with UPDATE_METRICS_DOC=1 go test ./internal/metrics/ -run Catalog")
	}
}
