package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram names used across the stack. RPC latency histograms are
// per-method: HistRPCLatencyPrefix + method ("rpc.latency.Scan").
const (
	HistRPCLatencyPrefix = "rpc.latency."
	HistQueueWait        = "exec.queue_wait"
	HistTaskRun          = "exec.task_runtime"
	HistQueryLatency     = "engine.query_latency"
)

// numBounds exponential buckets starting at 1µs and doubling: bucket i
// holds observations ≤ 1µs<<i, the last covers ~9.5 hours, and one
// overflow bucket catches the rest. Fixed bounds keep recording to two
// atomic adds — no allocation, no locks — which is what lets tracing-on
// runs stay within the <5% overhead gate.
const numBounds = 36

// Histogram is a fixed-bucket latency histogram safe for concurrent
// recording. The zero value is ready to use. Quantiles are estimated by
// linear interpolation within the containing bucket, so the relative
// error is bounded by the 2× bucket width.
type Histogram struct {
	buckets [numBounds + 1]atomic.Int64 // +1 = overflow
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration { return time.Microsecond << i }

// bucketFor returns the index of the bucket containing d.
func bucketFor(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Index of the highest set bit relative to 1µs, rounding up to the
	// covering power of two.
	us := (d + time.Microsecond - 1) / time.Microsecond
	idx := bits.Len64(uint64(us)) - 1
	if bucketBound(idx) < d {
		idx++
	}
	if idx > numBounds {
		return numBounds // overflow
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old {
			return
		}
		if h.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by locating the
// containing bucket and interpolating linearly inside it. Returns 0 when
// the histogram is empty. The estimate for the overflow bucket is clamped
// to the observed max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	var seen int64
	for i := 0; i <= numBounds; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			if i == numBounds {
				return h.Max()
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			if m := h.Max(); m < hi {
				hi = m // no observation exceeds the max
			}
			if hi < lo {
				return lo
			}
			frac := float64(rank-seen) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += n
	}
	return h.Max()
}

// reset zeroes the histogram in place.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// Buckets returns (upper bound, cumulative count) pairs for every
// non-empty prefix of the bucket array, ending with the +Inf bucket —
// the shape the exposition format wants.
func (h *Histogram) Buckets() ([]time.Duration, []int64) {
	if h == nil {
		return nil, nil
	}
	bounds := make([]time.Duration, 0, numBounds+1)
	counts := make([]int64, 0, numBounds+1)
	var cum int64
	for i := 0; i <= numBounds; i++ {
		cum += h.buckets[i].Load()
		if i == numBounds {
			bounds = append(bounds, -1) // sentinel for +Inf
		} else {
			bounds = append(bounds, bucketBound(i))
		}
		counts = append(counts, cum)
	}
	return bounds, counts
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Observe records d into the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	r.Histogram(name).Observe(d)
}

// Histograms returns the registered histograms (live references, not
// copies) keyed by name.
func (r *Registry) Histograms() map[string]*Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		out[name] = h
	}
	return out
}
