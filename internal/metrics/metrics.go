// Package metrics provides a lightweight registry of named counters shared
// by every layer of the simulated stack. The benchmark harness resets a
// registry before each run and reads it afterwards to report the costs the
// paper measures: bytes moved over the simulated network, shuffle volume,
// rows scanned inside region servers versus rows returned to the engine,
// connections created, and memory charged for decoded data.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Well-known counter names used across the stack. Layers may also register
// ad-hoc counters; these constants just keep call sites consistent.
const (
	RPCCalls            = "rpc.calls"
	RPCBytesSent        = "rpc.bytes_sent"
	RPCBytesReceived    = "rpc.bytes_received"
	ShuffleBytes        = "shuffle.bytes"
	ShuffleRecords      = "shuffle.records"
	RowsScanned         = "hbase.rows_scanned"
	RowsReturned        = "hbase.rows_returned"
	CellsScanned        = "hbase.cells_scanned"
	CellsReturned       = "hbase.cells_returned"
	RegionsScanned      = "hbase.regions_scanned"
	RegionsPruned       = "shc.regions_pruned"
	FiltersPushed       = "shc.filters_pushed"
	FiltersUnhandled    = "shc.filters_unhandled"
	ConnectionsCreated  = "conn.connections_created"
	ConnectionsReused   = "conn.connections_reused"
	TokensFetched       = "security.tokens_fetched"
	TokensRenewed       = "security.tokens_renewed"
	TokensCacheHits     = "security.token_cache_hits"
	MemoryCharged       = "engine.memory_charged_bytes"
	MemoryHeld          = "engine.memory_held_bytes"
	MemoryPeak          = "engine.memory_peak_bytes"
	BatchesStreamed     = "exec.batches_streamed"
	RowsShortCircuited  = "exec.rows_short_circuited"
	VectorBatches       = "exec.vector_batches"
	VectorRows          = "exec.vector_rows"
	ColumnarPages       = "hbase.columnar_pages"
	PagesPrefetched     = "hbase.pages_prefetched"
	FusedPages          = "hbase.fused_pages"
	TasksLaunched       = "engine.tasks_launched"
	TasksLocal          = "engine.tasks_local"
	WALAppends          = "wal.appends"
	MemstoreFlushes     = "hbase.memstore_flushes"
	Compactions         = "hbase.compactions"
	RegionSplits        = "hbase.region_splits"
	RegionsReassigned   = "hbase.regions_reassigned"
	Heartbeats          = "hbase.heartbeats"
	ServersDeclaredDead = "hbase.servers_dead"
	WALEntriesReplayed  = "wal.entries_replayed"
	ClientRetries       = "client.retries"
	TasksRetried        = "exec.tasks_retried"
	FaultsInjected      = "rpc.faults_injected"
	RPCHedges           = "rpc.hedges"
	RPCHedgeWins        = "rpc.hedge_wins"
	ServerShed          = "server.requests_shed"
	ServerQueuePeak     = "server.queue_depth_peak"
	BreakerOpens        = "breaker.circuit_opens"
	QueriesCancelled    = "engine.queries_cancelled"
	TasksCancelled      = "exec.tasks_cancelled"
	RegionsFenced       = "hbase.regions_fenced"
	RegionsDrained      = "hbase.regions_drained"
	FencedRejects       = "rpc.fenced_rejects"
	ServerSelfFenced    = "server.self_fenced"
	EpochBumps          = "master.epoch_bumps"
	PartitionsInjected  = "rpc.partitions_injected"
	PartitionsHealed    = "rpc.partitions_healed"
	PartitionDrops      = "rpc.partition_drops"
	WALCorruptEntries   = "wal.corrupt_entries"
	WALFencedAppends    = "wal.fenced_appends"
	ReplicaReads        = "hbase.replica_reads"
	HistReplicaLag      = "hbase.replica_lag_ms"
	Promotions          = "master.promotions"
	ReplicaFailovers    = "client.replica_failovers"
	ReadUnavailableMs   = "cluster.read_unavailable_ms"
	RepliesDropped      = "rpc.replies_dropped"
	JanitorRuns         = "master.janitor_runs"
	HotSplits           = "master.hot_splits"
	SplitsRolledForward = "master.splits_rolled_forward"
	SplitsRolledBack    = "master.splits_rolled_back"
	MemstoreDelays      = "server.memstore_delays"
	MemstoreRejects     = "server.memstore_full_rejects"
	BatchesDeduped      = "hbase.batches_deduped"
	BulkLoads           = "hbase.bulk_loads"
	BulkLoadCells       = "hbase.bulk_load_cells"
	MutatorFlushes      = "client.mutator_flushes"
	MultiPuts           = "client.multi_puts"
	MasterElections     = "master.elections"
	MasterTakeovers     = "master.takeovers"
	MasterFencedWrites  = "master.fenced_writes"
	MasterRediscoveries = "client.master_rediscoveries"
)

// Registry is a concurrency-safe set of named monotonic counters, gauges
// (SetMax/AddPeak high-water marks), and latency histograms.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*atomic.Int64
	hists    map[string]*Histogram
	gauges   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*atomic.Int64),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]struct{}),
	}
}

func (r *Registry) counter(name string) *atomic.Int64 {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = new(atomic.Int64)
	r.counters[name] = c
	return c
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.counter(name).Add(delta)
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// SetMax raises the named counter to v if v exceeds its current value —
// a high-water mark rather than an accumulator. Names written through
// SetMax are remembered as gauges: the exposition output labels them
// `gauge` rather than `counter`, since their value is a level, not a
// monotonic total, and Reset returns them to zero like any other level.
func (r *Registry) SetMax(name string, v int64) {
	if r == nil {
		return
	}
	r.markGauge(name)
	c := r.counter(name)
	for {
		old := c.Load()
		if v <= old {
			return
		}
		if c.CompareAndSwap(old, v) {
			return
		}
	}
}

// AddPeak adjusts a current-usage counter by delta and, when growing,
// records its new value as the peak counter's high-water mark. The pair
// (MemoryHeld, MemoryPeak) tracks live vs. peak decoded-row memory: the
// streamed pipeline releases batches after processing them, so its peak
// stays near one batch while the materialized path's peak is the full
// result set.
func (r *Registry) AddPeak(cur, peak string, delta int64) {
	if r == nil {
		return
	}
	r.markGauge(cur)
	v := r.counter(cur).Add(delta)
	if delta > 0 {
		r.SetMax(peak, v)
	}
}

// markGauge remembers that name holds a level rather than a monotonic
// total, so exposition can label it correctly.
func (r *Registry) markGauge(name string) {
	r.mu.RLock()
	_, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]struct{})
	}
	r.gauges[name] = struct{}{}
	r.mu.Unlock()
}

// IsGauge reports whether name has been written through SetMax/AddPeak.
func (r *Registry) IsGauge(name string) bool {
	if r == nil {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.gauges[name]
	return ok
}

// Get returns the current value of the named counter (zero if never written).
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// Reset zeroes every counter, gauge, and histogram while keeping them
// registered. High-water marks (SetMax/AddPeak gauges) restart from zero:
// a bench iteration that Resets between runs sees only its own peaks, not
// the high-water mark of every run before it.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot returns a point-in-time copy of all counters.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	return out
}

// Diff returns after-minus-before for every counter present in either map.
func Diff(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for name, v := range after {
		out[name] = v - before[name]
	}
	for name, v := range before {
		if _, ok := after[name]; !ok {
			out[name] = -v
		}
	}
	return out
}

// String renders the registry sorted by counter name, one per line,
// omitting zero counters.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-28s %d\n", name, snap[name])
	}
	return b.String()
}
