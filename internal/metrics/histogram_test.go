package metrics

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},               // exactly the first bound
		{time.Microsecond + 1, 1},           // just past it
		{2 * time.Microsecond, 1},           // exactly the second bound
		{2*time.Microsecond + 1, 2},         // just past it
		{4 * time.Microsecond, 2},           // power-of-two bounds are inclusive
		{3 * time.Microsecond, 2},           // interior of (2µs, 4µs]
		{time.Millisecond, 10},              // 1µs<<10 = 1024µs ≥ 1ms, 1µs<<9 = 512µs < 1ms
		{time.Second, 20},                   // 1µs<<20 ≈ 1.05s
		{bucketBound(numBounds - 1), numBounds - 1},
		{bucketBound(numBounds-1) + 1, numBounds}, // overflow
		{time.Duration(1<<62 - 1), numBounds},     // huge → overflow
	}
	for _, tc := range cases {
		if got := bucketFor(tc.d); got != tc.want {
			t.Errorf("bucketFor(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestHistogramCountSumMax(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 6*time.Millisecond {
		t.Fatalf("sum = %v, want 6ms", h.Sum())
	}
	if h.Max() != 3*time.Millisecond {
		t.Fatalf("max = %v, want 3ms", h.Max())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v, want 2ms", h.Mean())
	}
}

// Quantile estimates interpolate within a power-of-two bucket, so the
// estimate can never be off by more than a factor of two from the true
// value, and is exact at bucket boundaries.
func TestQuantileErrorBounds(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	vals := make([]time.Duration, 0, 2000)
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(int64(50*time.Millisecond))) + time.Microsecond
		vals = append(vals, d)
		h.Observe(d)
	}
	exact := func(q float64) time.Duration {
		sorted := append([]time.Duration(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		idx := int(q*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	for _, q := range []float64{0.50, 0.95, 0.99} {
		got, want := h.Quantile(q), exact(q)
		if got < want/2 || got > want*2 {
			t.Errorf("q%.0f = %v, exact %v: outside 2x bucket error bound", q*100, got, want)
		}
	}
	if h.Quantile(1.0) != h.Max() {
		t.Errorf("q100 = %v, want max %v", h.Quantile(1.0), h.Max())
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(5 * time.Millisecond)
	got := h.Quantile(0.5)
	// One observation in the (4ms, 8ms] bucket, interpolation clamped to max.
	if got > 5*time.Millisecond || got <= 4*time.Millisecond {
		t.Fatalf("single-value q50 = %v, want in (4ms, 5ms]", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*each)
	}
	_, counts := h.Buckets()
	if counts[len(counts)-1] != goroutines*each {
		t.Fatalf("cumulative bucket total = %d, want %d", counts[len(counts)-1], goroutines*each)
	}
}

func TestRegistryHistogramAndReset(t *testing.T) {
	r := NewRegistry()
	r.Observe(HistTaskRun, 2*time.Millisecond)
	r.Observe(HistTaskRun, 4*time.Millisecond)
	if got := r.Histogram(HistTaskRun).Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	r.SetMax(ServerQueuePeak, 9)
	r.AddPeak(MemoryHeld, MemoryPeak, 100)

	r.Reset()
	if got := r.Histogram(HistTaskRun).Count(); got != 0 {
		t.Fatalf("histogram count after Reset = %d, want 0", got)
	}
	if got := r.Histogram(HistTaskRun).Max(); got != 0 {
		t.Fatalf("histogram max after Reset = %v, want 0", got)
	}
	for _, name := range []string{ServerQueuePeak, MemoryHeld, MemoryPeak} {
		if got := r.Get(name); got != 0 {
			t.Fatalf("%s after Reset = %d, want 0", name, got)
		}
	}
	// Gauge kinds survive Reset: the next exposition still labels peaks
	// as gauges even before they are written again.
	if !r.IsGauge(ServerQueuePeak) || !r.IsGauge(MemoryPeak) || !r.IsGauge(MemoryHeld) {
		t.Fatal("gauge kinds must survive Reset")
	}
	if r.IsGauge(RPCCalls) {
		t.Fatal("plain counters must not be labelled gauges")
	}
}

func TestScopedMeterDualSink(t *testing.T) {
	cluster := NewRegistry()
	scope := NewRegistry()
	ctx := WithScope(context.Background(), scope)

	m := Scoped(ctx, cluster)
	m.Inc(RPCCalls)
	m.Add(RPCBytesSent, 100)
	m.SetMax(ServerQueuePeak, 3)
	m.AddPeak(MemoryHeld, MemoryPeak, 50)
	m.Observe(HistTaskRun, time.Millisecond)

	for _, r := range []*Registry{cluster, scope} {
		if r.Get(RPCCalls) != 1 || r.Get(RPCBytesSent) != 100 ||
			r.Get(ServerQueuePeak) != 3 || r.Get(MemoryPeak) != 50 {
			t.Fatalf("sink missing writes: %v", r.Snapshot())
		}
		if r.Histogram(HistTaskRun).Count() != 1 {
			t.Fatal("sink missing histogram observation")
		}
	}
}

func TestScopedMeterNoScope(t *testing.T) {
	cluster := NewRegistry()
	m := Scoped(context.Background(), cluster)
	m.Inc(RPCCalls)
	if cluster.Get(RPCCalls) != 1 {
		t.Fatal("primary sink missed write")
	}
	// Scope == primary must not double count.
	ctx := WithScope(context.Background(), cluster)
	m = Scoped(ctx, cluster)
	m.Inc(RPCCalls)
	if got := cluster.Get(RPCCalls); got != 2 {
		t.Fatalf("RPCCalls = %d, want 2 (no double count)", got)
	}
	// Direct writes only to its registry; nil-safe throughout.
	Direct(nil).Inc(RPCCalls)
}

func TestWriteExposition(t *testing.T) {
	r := NewRegistry()
	r.Add(RPCCalls, 7)
	r.SetMax(ServerQueuePeak, 4)
	r.Observe(HistRPCLatencyPrefix+"Scan", 3*time.Millisecond)
	r.Observe(HistRPCLatencyPrefix+"Scan", 100*time.Microsecond)

	var b strings.Builder
	if err := r.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE shc_rpc_calls counter",
		"shc_rpc_calls 7",
		"# TYPE shc_server_queue_depth_peak gauge",
		"shc_server_queue_depth_peak 4",
		"# TYPE shc_rpc_latency_Scan histogram",
		`shc_rpc_latency_Scan_bucket{le="+Inf"} 2`,
		"shc_rpc_latency_Scan_count 2",
		"shc_rpc_latency_Scan_sum 0.0031",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 128µs bound holds the 100µs observation.
	if !strings.Contains(out, `le="0.000128"} 1`) {
		t.Errorf("expected cumulative bucket at 128µs = 1 in:\n%s", out)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe(HistQueueWait, time.Duration(i)*time.Millisecond)
	}
	out := r.SummaryString()
	if !strings.Contains(out, HistQueueWait) || !strings.Contains(out, "p95=") {
		t.Fatalf("summary missing fields:\n%s", out)
	}
}

func TestNilRegistryHistogramSafe(t *testing.T) {
	var r *Registry
	r.Observe(HistTaskRun, time.Millisecond)
	if r.Histogram(HistTaskRun) != nil {
		t.Fatal("nil registry must return nil histogram")
	}
	if err := r.WriteExposition(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
