package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestAddGet(t *testing.T) {
	r := NewRegistry()
	if got := r.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	r.Add(RPCCalls, 3)
	r.Inc(RPCCalls)
	if got := r.Get(RPCCalls); got != 4 {
		t.Errorf("Get = %d, want 4", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1) // must not panic
	r.Inc("x")
	r.Reset()
	if r.Get("x") != 0 {
		t.Error("nil registry Get must be 0")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry Snapshot must be nil")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 10)
	r.Add("b", 20)
	r.Reset()
	if r.Get("a") != 0 || r.Get("b") != 0 {
		t.Error("Reset must zero counters")
	}
}

func TestSnapshotAndDiff(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 5)
	before := r.Snapshot()
	r.Add("a", 2)
	r.Add("b", 7)
	d := Diff(before, r.Snapshot())
	if d["a"] != 2 || d["b"] != 7 {
		t.Errorf("Diff = %v", d)
	}
}

func TestDiffMissingInAfter(t *testing.T) {
	d := Diff(map[string]int64{"gone": 4}, map[string]int64{})
	if d["gone"] != -4 {
		t.Errorf("Diff missing-in-after = %v", d)
	}
}

func TestConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Inc("c")
			}
		}()
	}
	wg.Wait()
	if got := r.Get("c"); got != 5000 {
		t.Errorf("concurrent adds = %d, want 5000", got)
	}
}

func TestStringSortedNonZero(t *testing.T) {
	r := NewRegistry()
	r.Add("zzz", 1)
	r.Add("aaa", 2)
	r.Add("mmm", 0)
	s := r.String()
	if strings.Contains(s, "mmm") {
		t.Error("String must omit zero counters")
	}
	if strings.Index(s, "aaa") > strings.Index(s, "zzz") {
		t.Error("String must sort by name")
	}
}
