// Exposition and quantile edge-case tests live in an external test package
// so they can drive ops.ValidateExposition against real WriteExposition
// output without an import cycle.
package metrics_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
)

// TestWriteExpositionUnderConcurrentScopedWriters scrapes a registry while
// scoped meters hammer it from many goroutines — the ops-endpoint situation:
// /metrics runs mid-query. Every intermediate scrape must be structurally
// well-formed, and the final totals exact. Run under -race this also proves
// the registry's scrape path takes no unsynchronized reads.
func TestWriteExpositionUnderConcurrentScopedWriters(t *testing.T) {
	base := metrics.NewRegistry()
	const writers, rounds = 8, 400
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scope := metrics.NewRegistry()
			ctx := metrics.WithScope(context.Background(), scope)
			m := metrics.Scoped(ctx, base)
			<-start
			for i := 0; i < rounds; i++ {
				m.Inc(metrics.RPCCalls)
				m.Add(metrics.RPCBytesReceived, 128)
				m.Observe(metrics.HistQueryLatency, time.Duration(i+1)*time.Microsecond)
				m.SetMax(metrics.ServerQueuePeak, int64(i))
				m.Inc(fmt.Sprintf("test.writer_%d_rounds", w))
			}
			if got := scope.Get(metrics.RPCCalls); got != rounds {
				t.Errorf("writer %d scope rpc.calls = %d, want %d", w, got, rounds)
			}
		}(w)
	}

	close(start)
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		base.WriteExposition(&buf)
		if buf.Len() == 0 {
			continue // nothing recorded yet
		}
		if err := ops.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("scrape %d malformed under concurrent writers: %v\n%s", i, err, buf.String())
		}
	}
	wg.Wait()

	if got := base.Get(metrics.RPCCalls); got != writers*rounds {
		t.Errorf("base rpc.calls = %d, want %d", got, writers*rounds)
	}
	if got := base.Histogram(metrics.HistQueryLatency).Count(); got != writers*rounds {
		t.Errorf("base latency count = %d, want %d", got, writers*rounds)
	}
	var buf bytes.Buffer
	base.WriteExposition(&buf)
	if err := ops.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("final exposition malformed: %v", err)
	}
}

// TestQuantileAtBucketEdges pins the interpolation behaviour exactly at
// bucket boundaries, where off-by-one bucket selection or unclamped
// interpolation would show up.
func TestQuantileAtBucketEdges(t *testing.T) {
	// Every observation exactly on a bucket's upper bound: the top quantile
	// must return that bound exactly (hi is clamped to the observed max),
	// and interpolation inside the bucket stays within (lo, bound].
	var h metrics.Histogram
	const bound = 64 * time.Microsecond // bucket 6: (32µs, 64µs]
	for i := 0; i < 100; i++ {
		h.Observe(bound)
	}
	if got := h.Quantile(1); got != bound {
		t.Errorf("Quantile(1) = %v, want exactly %v", got, bound)
	}
	if got := h.Quantile(0.5); got <= 32*time.Microsecond || got > bound {
		t.Errorf("Quantile(0.5) = %v, want within (32µs, %v]", got, bound)
	}

	// A single observation below the first bound interpolates toward it but
	// never past the max.
	var lo metrics.Histogram
	lo.Observe(500 * time.Nanosecond)
	if got := lo.Quantile(1); got != 500*time.Nanosecond {
		t.Errorf("single sub-bucket observation: Quantile(1) = %v, want 500ns", got)
	}

	// An overflow-bucket observation reports the max, not a bucket bound.
	var of metrics.Histogram
	of.Observe(10 * time.Hour)
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := of.Quantile(q); got != 10*time.Hour {
			t.Errorf("overflow Quantile(%v) = %v, want 10h", q, got)
		}
	}

	// Observations on successive power-of-two bounds: quantiles are
	// monotonic in q and never exceed the max.
	var m metrics.Histogram
	maxD := time.Duration(0)
	for i := 0; i < 10; i++ {
		d := time.Microsecond << i
		m.Observe(d)
		if d > maxD {
			maxD = d
		}
	}
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := m.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %v < previous %v; not monotonic", q, got, prev)
		}
		if got > maxD {
			t.Errorf("Quantile(%v) = %v exceeds max %v", q, got, maxD)
		}
		prev = got
	}
}
