package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CatalogEntry documents one well-known metric.
type CatalogEntry struct {
	// Name is the registry key (the value of the metrics.* constant);
	// histogram families use a "<method>" placeholder for their variable
	// suffix.
	Name string
	// Kind is "counter" (monotonic total), "gauge" (level / high-water
	// mark), or "histogram".
	Kind string
	// Help is a one-line description.
	Help string
}

// Catalog lists every well-known metric with its kind and meaning — the
// source docs/METRICS.md is generated from (TestCatalogMatchesDoc keeps the
// two in sync, and TestCatalogCoversConstants keeps this list in sync with
// the constants).
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{BreakerOpens, "counter", "Circuit-breaker open transitions (threshold trips and failed half-open probes)."},
		{ClientRetries, "counter", "Client-level operation retries after retryable errors."},
		{MutatorFlushes, "counter", "Buffered-mutator flushes to the cluster."},
		{MultiPuts, "counter", "Multi-put batches sent by the client."},
		{ReplicaFailovers, "counter", "Timeline reads failed over from a dead primary to a replica."},
		{ReadUnavailableMs, "gauge", "Longest observed read-unavailability window, milliseconds."},
		{ConnectionsCreated, "counter", "Connections dialed to region servers."},
		{ConnectionsReused, "counter", "Connection requests served from the cache instead of dialing."},
		{MemoryCharged, "counter", "Bytes charged to the engine for decoded rows, cumulative."},
		{MemoryHeld, "gauge", "Decoded-row bytes currently held by the engine."},
		{MemoryPeak, "gauge", "High-water mark of decoded-row bytes held."},
		{QueriesCancelled, "counter", "Queries that ended cancelled or past their deadline."},
		{HistQueryLatency, "histogram", "End-to-end query latency."},
		{TasksLaunched, "counter", "Tasks launched by the scheduler."},
		{TasksLocal, "counter", "Tasks placed on their preferred (data-local) host."},
		{BatchesStreamed, "counter", "Batches streamed through fused pipelines."},
		{HistQueueWait, "histogram", "Task wait between enqueue and execution."},
		{RowsShortCircuited, "counter", "Rows skipped by early-out limit handling."},
		{HistTaskRun, "histogram", "Task execution wall time."},
		{TasksCancelled, "counter", "Queued tasks dropped when a run aborted."},
		{TasksRetried, "counter", "Tasks re-executed after retryable transport failures."},
		{VectorBatches, "counter", "Columnar batches processed by vectorized operators."},
		{VectorRows, "counter", "Rows carried in columnar batches."},
		{BatchesDeduped, "counter", "Write batches dropped server-side as exactly-once duplicates."},
		{BulkLoadCells, "counter", "Cells ingested through bulk load."},
		{BulkLoads, "counter", "Bulk-load operations applied."},
		{CellsReturned, "counter", "Cells returned from region servers to the client."},
		{CellsScanned, "counter", "Cells read inside region servers."},
		{ColumnarPages, "counter", "Columnar scan pages served by region servers."},
		{Compactions, "counter", "Store-file compactions."},
		{FusedPages, "counter", "Fused scan→filter→project pages served."},
		{Heartbeats, "counter", "Master heartbeat probes sent to region servers."},
		{MemstoreFlushes, "counter", "MemStore flushes to store files."},
		{PagesPrefetched, "counter", "Scan pages fetched ahead of the cursor."},
		{RegionSplits, "counter", "Region splits completed."},
		{RegionsDrained, "counter", "Regions moved off gracefully-draining servers."},
		{RegionsFenced, "counter", "Regions re-homed under a bumped (fencing) epoch."},
		{RegionsReassigned, "counter", "Regions reassigned after server death or drain."},
		{RegionsScanned, "counter", "Regions touched by scans."},
		{HistReplicaLag, "histogram", "Replica apply lag behind the primary WAL."},
		{ReplicaReads, "counter", "Reads served by region replicas."},
		{RowsReturned, "counter", "Rows returned from region servers to the client."},
		{RowsScanned, "counter", "Rows read inside region servers."},
		{ServersDeclaredDead, "counter", "Servers declared dead by heartbeat rounds."},
		{EpochBumps, "counter", "Region epoch increments (fencing events)."},
		{MasterElections, "counter", "Master leader elections won (boot and failover)."},
		{MasterTakeovers, "counter", "Standby masters that took over after leader loss."},
		{MasterFencedWrites, "counter", "Coordination writes rejected because the issuing master was deposed."},
		{MasterRediscoveries, "counter", "Client re-reads of the master election after losing the cached leader."},
		{HotSplits, "counter", "Splits triggered by write-hot regions."},
		{JanitorRuns, "counter", "Master janitor maintenance passes."},
		{Promotions, "counter", "Replicas promoted to primary during failover."},
		{SplitsRolledBack, "counter", "Crashed splits rolled back during recovery."},
		{SplitsRolledForward, "counter", "Crashed splits rolled forward during recovery."},
		{RPCBytesReceived, "counter", "Response bytes received over the simulated network."},
		{RPCBytesSent, "counter", "Request bytes sent over the simulated network."},
		{RPCCalls, "counter", "RPC calls issued over the simulated network."},
		{FaultsInjected, "counter", "Chaos faults fired by the injector."},
		{FencedRejects, "counter", "RPCs rejected by epoch fencing."},
		{RPCHedgeWins, "counter", "Hedged duplicates that answered before the original."},
		{RPCHedges, "counter", "Speculative duplicate reads fired by hedging."},
		{HistRPCLatencyPrefix + "<method>", "histogram", "Per-method RPC latency (one histogram per RPC method)."},
		{PartitionDrops, "counter", "RPCs dropped by partition rules."},
		{PartitionsHealed, "counter", "Network partitions healed."},
		{PartitionsInjected, "counter", "Network partitions installed."},
		{RepliesDropped, "counter", "RPC replies dropped after the caller hung up."},
		{TokensFetched, "counter", "Authentication tokens fetched."},
		{TokensRenewed, "counter", "Tokens renewed before expiry."},
		{TokensCacheHits, "counter", "Token requests served from the credential cache."},
		{MemstoreDelays, "counter", "Writes delayed at the memstore low watermark."},
		{MemstoreRejects, "counter", "Writes rejected at the memstore high watermark."},
		{ServerQueuePeak, "gauge", "Peak admission-queue depth on a region server."},
		{ServerShed, "counter", "Requests shed by server admission control."},
		{ServerSelfFenced, "counter", "Servers that fenced themselves after a lapsed master lease."},
		{FiltersPushed, "counter", "Predicates pushed down into the datasource."},
		{FiltersUnhandled, "counter", "Predicates the source declined (evaluated in the engine)."},
		{RegionsPruned, "counter", "Regions skipped by partition pruning."},
		{ShuffleBytes, "counter", "Bytes moved through the shuffle."},
		{ShuffleRecords, "counter", "Records moved through the shuffle."},
		{WALAppends, "counter", "WAL records appended."},
		{WALCorruptEntries, "counter", "Corrupt WAL entries skipped during replay."},
		{WALEntriesReplayed, "counter", "WAL entries replayed during recovery."},
		{WALFencedAppends, "counter", "WAL appends rejected by fencing."},
	}
}

// WriteCatalog renders the catalog as the markdown document committed at
// docs/METRICS.md, grouped by subsystem prefix.
func WriteCatalog(w io.Writer) error {
	entries := Catalog()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	groups := make(map[string][]CatalogEntry)
	var order []string
	for _, e := range entries {
		sub := e.Name
		if i := strings.IndexByte(sub, '.'); i > 0 {
			sub = sub[:i]
		}
		if _, ok := groups[sub]; !ok {
			order = append(order, sub)
		}
		groups[sub] = append(groups[sub], e)
	}
	sort.Strings(order)

	if _, err := fmt.Fprint(w, "# Metrics catalog\n\n"+
		"Every well-known metric in the stack, by `subsystem.noun_verb` name.\n"+
		"Counters are monotonic totals; gauges are levels or high-water marks\n"+
		"(reset with the registry); histograms record latency distributions.\n"+
		"All of them appear on the ops endpoint's `/metrics` exposition with an\n"+
		"`shc_` prefix and dots mapped to underscores.\n\n"+
		"Generated from `internal/metrics/catalog.go` — edit the catalog there\n"+
		"and run `UPDATE_METRICS_DOC=1 go test ./internal/metrics/ -run Catalog`\n"+
		"to regenerate.\n"); err != nil {
		return err
	}
	for _, sub := range order {
		if _, err := fmt.Fprintf(w, "\n## %s\n\n| Metric | Kind | Meaning |\n|---|---|---|\n", sub); err != nil {
			return err
		}
		for _, e := range groups[sub] {
			if _, err := fmt.Fprintf(w, "| `%s` | %s | %s |\n", e.Name, e.Kind, e.Help); err != nil {
				return err
			}
		}
	}
	return nil
}
