package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteExposition dumps every counter, gauge, and histogram in the
// Prometheus text exposition format, sorted by name. Counter names are
// sanitized (dots → underscores) and prefixed with "shc_"; histogram
// bucket bounds are rendered in seconds with cumulative counts, per the
// format's conventions. Names written through SetMax/AddPeak are typed
// `gauge`, everything else `counter`.
func (r *Registry) WriteExposition(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kind := "counter"
		if r.IsGauge(name) {
			kind = "gauge"
		}
		m := sanitize(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m, kind, m, snap[name]); err != nil {
			return err
		}
	}

	hists := r.Histograms()
	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		m := sanitize(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
			return err
		}
		bounds, counts := h.Buckets()
		// Collapse the empty head and saturated tail of the fixed bucket
		// array: print from the first non-empty cumulative count through
		// the bucket that reaches the total, then jump to +Inf.
		total := h.Count()
		started := false
		for i, b := range bounds {
			isInf := b < 0
			if !started && counts[i] == 0 && !isInf {
				continue
			}
			started = true
			le := "+Inf"
			if !isInf {
				le = strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", m, le, counts[i]); err != nil {
				return err
			}
			if isInf {
				break
			}
			if counts[i] == total {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, total); err != nil {
					return err
				}
				break
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			m, strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64), m, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// SummaryString renders every histogram's p50/p95/p99/max on one line
// each — the human-readable companion to WriteExposition.
func (r *Registry) SummaryString() string {
	if r == nil {
		return ""
	}
	hists := r.Histograms()
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		h := hists[name]
		if h.Count() == 0 {
			continue
		}
		out += fmt.Sprintf("%-24s n=%-6d p50=%-10s p95=%-10s p99=%-10s max=%s\n",
			name, h.Count(),
			roundDur(h.Quantile(0.50)), roundDur(h.Quantile(0.95)),
			roundDur(h.Quantile(0.99)), roundDur(h.Max()))
	}
	return out
}

func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// sanitize maps a dotted counter name onto the exposition charset.
func sanitize(name string) string {
	b := make([]byte, 0, len(name)+4)
	b = append(b, "shc_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}
