package rpc

import (
	"context"
	"errors"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

func newTestNet(t *testing.T) (*Network, *metrics.Registry) {
	t.Helper()
	m := metrics.NewRegistry()
	n := NewNetwork(Config{}, m)
	if err := n.AddHost("rs1"); err != nil {
		t.Fatal(err)
	}
	return n, m
}

func TestCallDispatchAndMetering(t *testing.T) {
	n, m := newTestNet(t)
	err := n.Handle("rs1", "echo", func(_ context.Context, req Message) (Message, error) {
		return req, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("rs1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, err := conn.Call("echo", Bytes("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.(Bytes)) != "hello" {
		t.Errorf("resp = %q", resp)
	}
	if got := m.Get(metrics.RPCCalls); got != 1 {
		t.Errorf("calls = %d", got)
	}
	if got := m.Get(metrics.RPCBytesSent); got != 5 {
		t.Errorf("bytes sent = %d", got)
	}
	if got := m.Get(metrics.RPCBytesReceived); got != 5 {
		t.Errorf("bytes received = %d", got)
	}
	if got := m.Get(metrics.ConnectionsCreated); got != 1 {
		t.Errorf("connections = %d", got)
	}
}

func TestUnknownHostAndMethod(t *testing.T) {
	n, _ := newTestNet(t)
	if _, err := n.Dial("nope"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("Dial unknown: %v", err)
	}
	conn, _ := n.Dial("rs1")
	if _, err := conn.Call("missing", nil); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("Call unknown method: %v", err)
	}
	if err := n.Handle("nope", "m", nil); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("Handle unknown host: %v", err)
	}
}

func TestDuplicateHost(t *testing.T) {
	n, _ := newTestNet(t)
	if err := n.AddHost("rs1"); err == nil {
		t.Error("duplicate AddHost must fail")
	}
}

func TestHostDown(t *testing.T) {
	n, _ := newTestNet(t)
	if err := n.Handle("rs1", "m", func(context.Context, Message) (Message, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial("rs1")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetDown("rs1", true); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("m", nil); !errors.Is(err, ErrHostDown) {
		t.Errorf("call to down host: %v", err)
	}
	if _, err := n.Dial("rs1"); !errors.Is(err, ErrHostDown) {
		t.Errorf("dial to down host: %v", err)
	}
	if err := n.SetDown("rs1", false); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("m", nil); err != nil {
		t.Errorf("call after recovery: %v", err)
	}
	if err := n.SetDown("ghost", true); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("SetDown unknown host: %v", err)
	}
}

func TestClosedConn(t *testing.T) {
	n, _ := newTestNet(t)
	conn, _ := n.Dial("rs1")
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal("double close must be harmless")
	}
	if _, err := conn.Call("m", nil); !errors.Is(err, ErrConnClosed) {
		t.Errorf("call on closed conn: %v", err)
	}
}

func TestHandlerError(t *testing.T) {
	n, _ := newTestNet(t)
	boom := errors.New("boom")
	_ = n.Handle("rs1", "fail", func(context.Context, Message) (Message, error) { return nil, boom })
	conn, _ := n.Dial("rs1")
	if _, err := conn.Call("fail", nil); !errors.Is(err, boom) {
		t.Errorf("handler error: %v", err)
	}
}

func TestHosts(t *testing.T) {
	n, _ := newTestNet(t)
	_ = n.AddHost("rs2")
	hosts := n.Hosts()
	if len(hosts) != 2 {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestNilMessagesMeterZero(t *testing.T) {
	n, m := newTestNet(t)
	_ = n.Handle("rs1", "void", func(context.Context, Message) (Message, error) { return nil, nil })
	conn, _ := n.Dial("rs1")
	if _, err := conn.Call("void", nil); err != nil {
		t.Fatal(err)
	}
	if m.Get(metrics.RPCBytesSent) != 0 || m.Get(metrics.RPCBytesReceived) != 0 {
		t.Error("nil messages must meter zero bytes")
	}
}
