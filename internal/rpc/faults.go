package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// MethodDial is the pseudo-method name fault rules use to match connection
// establishment (Network.Dial) instead of a specific RPC method.
const MethodDial = "@dial"

// FaultRule scripts failures for the calls it matches. A rule with both
// Host and Method empty matches every call; either field narrows the match.
// Matching calls are counted in order, so the deterministic knobs
// (SkipFirst, FailNext) script exact failure sequences: "let the first two
// fused pages through, then fail the next one". FailProb adds seeded random
// failures on top for soak-style chaos runs.
type FaultRule struct {
	// Host restricts the rule to one host; "" matches any.
	Host string
	// Method restricts the rule to one RPC method (MethodDial for dials);
	// "" matches any.
	Method string
	// Caller restricts the rule to calls made by one host (tagged via
	// rpc.WithCaller); "" matches any caller, including untagged ones.
	Caller string
	// ExceptCaller exempts one caller from the rule — the other half of an
	// asymmetric partition ("everyone except the master loses this host").
	ExceptCaller string
	// Drop fails every matching call (after SkipFirst) deterministically
	// without consulting the seeded RNG, so installing or removing a
	// partition mid-run never perturbs the failure schedule other
	// probabilistic rules draw from the shared RNG. Drops are metered
	// separately as partition drops.
	Drop bool
	// SkipFirst lets this many matching calls through untouched before the
	// failure logic applies.
	SkipFirst int
	// FailNext fails this many matching calls (after SkipFirst)
	// deterministically; 0 disables the deterministic window.
	FailNext int
	// FailProb independently fails each matching call (after SkipFirst and
	// outside the FailNext window) with this probability, drawn from the
	// injector's seeded RNG.
	FailProb float64
	// Err is the error injected; nil injects ErrHostDown. Use ErrConnClosed
	// to simulate a killed connection rather than an unreachable host.
	Err error
	// DropReply shifts the injected failure to after the handler has run:
	// the request executes on the server (its effects apply) but the
	// response never reaches the caller, who sees Err exactly as if the
	// connection died mid-reply. This is the ack-lost failure mode —
	// "applied but unacknowledged" — that exactly-once write tests need;
	// a plain injected error models "never applied". Ignored for dials.
	DropReply bool
	// ExtraLatency is added to every matching call, failed or not. The
	// sleep respects the call's context: a cancelled or timed-out caller
	// stops waiting immediately instead of serving out the injected delay.
	ExtraLatency time.Duration
	// LatencyEvery, when positive, turns ExtraLatency into a straggler
	// schedule: only the 1st, (1+LatencyEvery)th, (1+2·LatencyEvery)th …
	// matching calls after SkipFirst are slowed. 0 keeps the old behaviour
	// (every matching call pays ExtraLatency). LatencyEvery=2 models the
	// host where every other request stalls — the schedule hedged reads
	// beat, because the speculative duplicate lands on a fast slot.
	LatencyEvery int
	// OnFire runs (outside the injector's lock) each time this rule injects
	// a failure — the hook chaos tests use to crash a server at exactly the
	// K-th matching call.
	OnFire func()

	seen  int // matching calls observed
	fired int // failures injected
}

// FaultInjector evaluates an ordered rule list against every call on a
// Network. All randomness comes from one seeded RNG, so a given rule set,
// seed, and call sequence always produces the same failure schedule.
type FaultInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*FaultRule
	meter *metrics.Registry
}

// NewFaultInjector builds an injector with the given seed and initial rules.
func NewFaultInjector(seed int64, rules ...*FaultRule) *FaultInjector {
	f := &FaultInjector{rng: rand.New(rand.NewSource(seed))}
	f.rules = append(f.rules, rules...)
	return f
}

// Add appends a rule.
func (f *FaultInjector) Add(r *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Remove deletes a previously added rule (matched by identity); removing a
// rule that was never added is a no-op. Healing a partition removes its drop
// rules this way.
func (f *FaultInjector) Remove(r *FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, have := range f.rules {
		if have == r {
			f.rules = append(f.rules[:i], f.rules[i+1:]...)
			return
		}
	}
}

// Fired reports how many failures the injector has injected in total.
func (f *FaultInjector) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.rules {
		n += r.fired
	}
	return n
}

// apply evaluates the rules for one call, sleeping any injected latency and
// returning the injected error (nil = let the call through). afterReply
// reports that the winning rule was a DropReply: the dispatcher must run the
// handler first and discard its response, rather than failing the call up
// front. OnFire hooks run outside the lock so they can safely mutate the
// network (SetDown) or drive recovery (master failover) without
// deadlocking. Injected latency is cancellable: when ctx is done mid-sleep
// the call returns the context's error immediately, so deadline tests never
// wall-clock-wait for the delay.
func (f *FaultInjector) apply(ctx context.Context, host, method string) (injected error, afterReply bool) {
	if f == nil {
		return nil, false
	}
	caller := CallerFromContext(ctx)
	f.mu.Lock()
	var extra time.Duration
	var err error
	var dropped, dropReply bool
	var hooks []func()
	for _, r := range f.rules {
		if r.Host != "" && r.Host != host {
			continue
		}
		if r.Method != "" && r.Method != method {
			continue
		}
		if r.Caller != "" && r.Caller != caller {
			continue
		}
		if r.ExceptCaller != "" && r.ExceptCaller == caller {
			continue
		}
		r.seen++
		after := r.seen - r.SkipFirst
		if r.LatencyEvery <= 0 {
			extra += r.ExtraLatency
		} else if after >= 1 && (after-1)%r.LatencyEvery == 0 {
			extra += r.ExtraLatency
		}
		if err != nil {
			continue // one injected failure per call is enough
		}
		if after < 1 {
			continue
		}
		inject := (r.FailNext > 0 && after <= r.FailNext) || r.Drop
		if !inject && r.FailProb > 0 && f.rng.Float64() < r.FailProb {
			inject = true
		}
		if !inject {
			continue
		}
		base := r.Err
		if base == nil {
			base = ErrHostDown
		}
		err = fmt.Errorf("%w: %q (injected)", base, host)
		dropped = r.Drop
		dropReply = r.DropReply
		r.fired++
		if r.OnFire != nil {
			hooks = append(hooks, r.OnFire)
		}
	}
	meter := f.meter
	f.mu.Unlock()
	if extra > 0 {
		if serr := SleepContext(ctx, extra); serr != nil {
			return serr, false
		}
	}
	if err != nil {
		meter.Inc(metrics.FaultsInjected)
		if dropped {
			meter.Inc(metrics.PartitionDrops)
		}
		if dropReply {
			meter.Inc(metrics.RepliesDropped)
		}
		for _, h := range hooks {
			h()
		}
	}
	return err, dropReply
}

// SetFaultInjector installs (or, with nil, removes) a fault injector on the
// network. Injected failures compose with SetDown: a host marked down fails
// before any rule is consulted.
func (n *Network) SetFaultInjector(f *FaultInjector) {
	if f != nil {
		f.mu.Lock()
		f.meter = n.meter
		f.mu.Unlock()
	}
	n.mu.Lock()
	n.faults = f
	n.mu.Unlock()
}

func (n *Network) injector() *FaultInjector {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.faults
}

// Injector returns the installed fault injector (nil when none), so layers
// that script partitions (Cluster.PartitionServer) can add rules to an
// injector a test already seeded instead of replacing it.
func (n *Network) Injector() *FaultInjector { return n.injector() }
