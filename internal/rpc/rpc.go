// Package rpc provides the simulated transport that every remote
// interaction in the stack flows through: HBase client calls, meta lookups,
// and token requests. Messages are dispatched in-process, but each call is
// metered (call count, request/response bytes) and optionally charged a
// configurable latency, so the benchmarks observe the same relative network
// costs the paper reports — fewer RPCs when connections are cached and
// operators are fused, fewer bytes when predicates and columns are pushed
// down.
//
// Every call carries a context.Context end-to-end: simulated latency
// (connection setup, call cost, injected fault latency) aborts as soon as
// the context is cancelled or its deadline passes, and the context reaches
// the server-side handler so admission queues and long scans can abandon
// work for callers that no longer want it.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/trace"
)

// Errors returned by the transport.
var (
	ErrUnknownHost   = errors.New("rpc: unknown host")
	ErrUnknownMethod = errors.New("rpc: unknown method")
	ErrHostDown      = errors.New("rpc: host down")
	ErrConnClosed    = errors.New("rpc: connection closed")
)

// callerKey carries the calling host's identity in the context, so fault
// rules can partition traffic asymmetrically (master↔server severed while
// client↔server still flows, or the reverse).
type callerKey struct{}

// WithCaller tags ctx with the calling host's name. Calls made with an
// untagged context have no caller identity and only match rules that do not
// filter on one.
func WithCaller(ctx context.Context, host string) context.Context {
	return context.WithValue(ctx, callerKey{}, host)
}

// CallerFromContext returns the caller identity set by WithCaller ("" when
// untagged).
func CallerFromContext(ctx context.Context) string {
	if v, ok := ctx.Value(callerKey{}).(string); ok {
		return v
	}
	return ""
}

// Message is anything that can cross the simulated wire. WireSize must
// report how many bytes the message would occupy serialized; the transport
// meters it but does not actually serialize.
type Message interface {
	WireSize() int
}

// Bytes adapts a raw byte slice to Message.
type Bytes []byte

// WireSize returns the slice length.
func (b Bytes) WireSize() int { return len(b) }

// Handler processes one request on the server side of a call. The context
// is the caller's: it is cancelled when the caller gives up (deadline,
// hedged-read loser, aborted query), so handlers that queue or loop should
// watch it.
type Handler func(ctx context.Context, req Message) (Message, error)

// Config tunes the simulated cost model. Zero values mean "free", which
// unit tests use; benchmarks configure small real latencies so connection
// reuse and call fusion are visible in wall-clock numbers.
type Config struct {
	// ConnLatency is charged once per Dial (connection establishment,
	// including the coordination-service lookup round trip it models).
	ConnLatency time.Duration
	// CallLatency is charged once per Call.
	CallLatency time.Duration
	// BytesPerSecond, when positive, charges transfer time for payload
	// bytes on top of CallLatency.
	BytesPerSecond int64
}

// Network is a set of named hosts that can call each other.
type Network struct {
	cfg   Config
	meter *metrics.Registry

	mu     sync.RWMutex
	hosts  map[string]*endpoint
	faults *FaultInjector
}

type endpoint struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	down     bool
}

// NewNetwork creates a network with the given cost model. meter may be nil.
func NewNetwork(cfg Config, meter *metrics.Registry) *Network {
	return &Network{cfg: cfg, meter: meter, hosts: make(map[string]*endpoint)}
}

// Meter returns the registry this network charges, possibly nil.
func (n *Network) Meter() *metrics.Registry { return n.meter }

// AddHost registers a host name. Adding an existing host is an error.
func (n *Network) AddHost(host string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[host]; ok {
		return fmt.Errorf("rpc: host %q already exists", host)
	}
	n.hosts[host] = &endpoint{handlers: make(map[string]Handler)}
	return nil
}

// Handle installs a handler for method on host.
func (n *Network) Handle(host, method string, h Handler) error {
	n.mu.RLock()
	ep, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handlers[method] = h
	return nil
}

// SetDown marks a host unreachable (or reachable again), for failure
// injection in tests.
func (n *Network) SetDown(host string, down bool) error {
	n.mu.RLock()
	ep, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.down = down
	return nil
}

// IsDown reports whether a host is currently marked unreachable. Unknown
// hosts read as down — to every caller they are equally absent.
func (n *Network) IsDown(host string) bool {
	n.mu.RLock()
	ep, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		return true
	}
	ep.mu.RLock()
	defer ep.mu.RUnlock()
	return ep.down
}

// Hosts lists registered host names (unordered).
func (n *Network) Hosts() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.hosts))
	for h := range n.hosts {
		out = append(out, h)
	}
	return out
}

// SleepContext sleeps d, returning early with the context's error if it is
// cancelled first. It is the cancellable form of time.Sleep every simulated
// latency in the stack goes through.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Conn is a cached, reusable connection from a client to a host. Creating
// one is deliberately expensive (ConnLatency) — SHC's connection cache
// exists to amortize exactly this cost (paper §V-B.1).
type Conn struct {
	n      *Network
	host   string
	mu     sync.Mutex
	closed bool
}

// Dial establishes a connection to host with no deadline.
func (n *Network) Dial(host string) (*Conn, error) {
	return n.DialContext(context.Background(), host)
}

// DialContext establishes a connection to host, charging connection latency
// (abandoned early if ctx is done) and incrementing the connections-created
// counter.
func (n *Network) DialContext(ctx context.Context, host string) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	ep, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	ep.mu.RLock()
	down := ep.down
	ep.mu.RUnlock()
	if down {
		return nil, fmt.Errorf("%w: %q", ErrHostDown, host)
	}
	dctx, sp := trace.StartSpan(ctx, "rpc:dial")
	sp.SetTag("host", host)
	defer sp.End()
	// A DropReply rule on a dial degenerates to a dial failure: there is no
	// server-side effect to preserve before the connection exists.
	if err, _ := n.injector().apply(dctx, host, MethodDial); err != nil {
		sp.SetError(err)
		return nil, err
	}
	if err := SleepContext(dctx, n.cfg.ConnLatency); err != nil {
		sp.SetError(err)
		return nil, err
	}
	metrics.Scoped(ctx, n.meter).Inc(metrics.ConnectionsCreated)
	return &Conn{n: n, host: host}, nil
}

// Host returns the remote host name.
func (c *Conn) Host() string { return c.host }

// Close marks the connection unusable. Closing twice is harmless.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Call invokes method on the connection's host with no deadline.
func (c *Conn) Call(method string, req Message) (Message, error) {
	return c.CallContext(context.Background(), method, req)
}

// CallContext invokes method on the connection's host, metering the call
// and the bytes in both directions. Simulated latency respects ctx; the
// handler receives ctx so server-side queues honor it too.
func (c *Conn) CallContext(ctx context.Context, method string, req Message) (Message, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrConnClosed
	}
	return c.n.call(ctx, c.host, method, req)
}

// call wraps dispatch with the per-call observability: a span named after
// the method (carrying host, byte sizes, and the error outcome) and the
// per-method latency histogram. Latency is recorded on the network's own
// registry and, when the context carries a query scope, on that too.
func (n *Network) call(ctx context.Context, host, method string, req Message) (Message, error) {
	sctx, sp := trace.StartSpan(ctx, "rpc:"+method)
	sp.SetTag("host", host)
	start := time.Now()
	resp, err := n.dispatch(sctx, host, method, req)
	metrics.Scoped(ctx, n.meter).Observe(metrics.HistRPCLatencyPrefix+method, time.Since(start))
	if resp != nil {
		sp.SetAttr("resp_bytes", int64(resp.WireSize()))
	}
	sp.SetError(err)
	sp.End()
	return resp, err
}

func (n *Network) dispatch(ctx context.Context, host, method string, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	ep, ok := n.hosts[host]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	ep.mu.RLock()
	h, hok := ep.handlers[method]
	down := ep.down
	ep.mu.RUnlock()
	if down {
		return nil, fmt.Errorf("%w: %q", ErrHostDown, host)
	}
	if !hok {
		return nil, fmt.Errorf("%w: %s on %q", ErrUnknownMethod, method, host)
	}
	injErr, afterReply := n.injector().apply(ctx, host, method)
	if injErr != nil && !afterReply {
		return nil, injErr
	}

	reqSize := 0
	if req != nil {
		reqSize = req.WireSize()
	}
	m := metrics.Scoped(ctx, n.meter)
	m.Inc(metrics.RPCCalls)
	m.Add(metrics.RPCBytesSent, int64(reqSize))

	resp, err := h(ctx, req)
	if err != nil {
		return nil, err
	}
	if injErr != nil {
		// Ack lost: the handler ran — its effects stand — but the reply is
		// discarded, so the caller observes a transport failure for a write
		// that in fact applied. Retry safety is the server's problem (dedup).
		return nil, injErr
	}
	respSize := 0
	if resp != nil {
		respSize = resp.WireSize()
	}
	m.Add(metrics.RPCBytesReceived, int64(respSize))
	if err := n.charge(ctx, reqSize+respSize); err != nil {
		return nil, err
	}
	return resp, nil
}

func (n *Network) charge(ctx context.Context, bytes int) error {
	d := n.cfg.CallLatency
	if n.cfg.BytesPerSecond > 0 {
		d += time.Duration(float64(bytes) / float64(n.cfg.BytesPerSecond) * float64(time.Second))
	}
	return SleepContext(ctx, d)
}
