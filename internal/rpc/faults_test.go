package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

func callOK(t *testing.T, n *Network) error {
	t.Helper()
	conn, err := n.Dial("rs1")
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Call("m", nil)
	return err
}

func newFaultNet(t *testing.T) (*Network, *metrics.Registry) {
	t.Helper()
	n, m := newTestNet(t)
	if err := n.Handle("rs1", "m", func(context.Context, Message) (Message, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	return n, m
}

func TestFaultSkipFirstThenFailNext(t *testing.T) {
	n, m := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{
		Host: "rs1", Method: "m", SkipFirst: 2, FailNext: 3,
	}))
	var schedule []bool
	for i := 0; i < 8; i++ {
		schedule = append(schedule, callOK(t, n) == nil)
	}
	want := []bool{true, true, false, false, false, true, true, true}
	for i := range want {
		if schedule[i] != want[i] {
			t.Fatalf("call %d ok=%v, want %v (schedule %v)", i, schedule[i], want[i], schedule)
		}
	}
	if got := m.Get(metrics.FaultsInjected); got != 3 {
		t.Errorf("faults injected = %d, want 3", got)
	}
}

func TestFaultInjectedErrorUnwraps(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1,
		&FaultRule{Method: "m", FailNext: 1},
		&FaultRule{Method: "m", SkipFirst: 1, FailNext: 1, Err: ErrConnClosed},
	))
	if err := callOK(t, n); !errors.Is(err, ErrHostDown) {
		t.Errorf("default injected error = %v, want ErrHostDown", err)
	}
	if err := callOK(t, n); !errors.Is(err, ErrConnClosed) {
		t.Errorf("custom injected error = %v, want ErrConnClosed", err)
	}
	if err := callOK(t, n); err != nil {
		t.Errorf("call after windows = %v", err)
	}
}

func TestFaultProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []bool {
		n, _ := newTestNet(t)
		_ = n.Handle("rs1", "m", func(context.Context, Message) (Message, error) { return nil, nil })
		n.SetFaultInjector(NewFaultInjector(seed, &FaultRule{Method: "m", FailProb: 0.4}))
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, callOK(t, n) == nil)
		}
		return out
	}
	a, b := run(7), run(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Errorf("FailProb 0.4 produced %d/%d failures", fails, len(a))
	}
}

func TestFaultDialRule(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{Host: "rs1", Method: MethodDial, FailNext: 1}))
	if _, err := n.Dial("rs1"); !errors.Is(err, ErrHostDown) {
		t.Errorf("first dial = %v, want injected ErrHostDown", err)
	}
	if err := callOK(t, n); err != nil {
		t.Errorf("second dial/call = %v", err)
	}
}

func TestFaultExtraLatency(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{Method: "m", ExtraLatency: 5 * time.Millisecond}))
	start := time.Now()
	if err := callOK(t, n); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Errorf("call took %v, extra latency not applied", took)
	}
}

func TestFaultOnFireHookMayMutateNetwork(t *testing.T) {
	n, _ := newFaultNet(t)
	inj := NewFaultInjector(1, &FaultRule{Host: "rs1", FailNext: 1, OnFire: func() {
		// A deadlock here (hook under the injector lock) would hang the test.
		_ = n.SetDown("rs1", true)
	}})
	n.SetFaultInjector(inj)
	if err := callOK(t, n); err == nil {
		t.Fatal("first call must fail")
	}
	// The hook marked the host down, which now fails before rules apply.
	if err := callOK(t, n); !errors.Is(err, ErrHostDown) {
		t.Errorf("call after hook = %v, want ErrHostDown", err)
	}
	if inj.Fired() != 1 {
		t.Errorf("fired = %d, want 1 (SetDown failures are not injections)", inj.Fired())
	}
}

func TestFaultInjectorRemoval(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{FailNext: 100}))
	if err := callOK(t, n); err == nil {
		t.Fatal("injector must fail the call")
	}
	n.SetFaultInjector(nil)
	if err := callOK(t, n); err != nil {
		t.Errorf("call after removal = %v", err)
	}
}

func callAs(t *testing.T, n *Network, caller string) error {
	t.Helper()
	ctx := WithCaller(context.Background(), caller)
	conn, err := n.DialContext(ctx, "rs1")
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.CallContext(ctx, "m", nil)
	return err
}

func TestFaultCallerRuleMatchesOnlyTaggedCaller(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{Host: "rs1", Caller: "master", Drop: true}))
	if err := callAs(t, n, "master"); !errors.Is(err, ErrHostDown) {
		t.Errorf("master call = %v, want dropped", err)
	}
	if err := callAs(t, n, "client-1"); err != nil {
		t.Errorf("client call = %v, want success", err)
	}
	if err := callOK(t, n); err != nil {
		t.Errorf("untagged call = %v, want success", err)
	}
}

func TestFaultExceptCallerRuleExemptsCaller(t *testing.T) {
	n, _ := newFaultNet(t)
	n.SetFaultInjector(NewFaultInjector(1, &FaultRule{Host: "rs1", ExceptCaller: "master", Drop: true}))
	if err := callAs(t, n, "master"); err != nil {
		t.Errorf("master call = %v, want exempt", err)
	}
	if err := callAs(t, n, "client-1"); !errors.Is(err, ErrHostDown) {
		t.Errorf("client call = %v, want dropped", err)
	}
	if err := callOK(t, n); !errors.Is(err, ErrHostDown) {
		t.Errorf("untagged call = %v, want dropped", err)
	}
}

func TestFaultDropDoesNotConsumeRNG(t *testing.T) {
	// Two networks share the same probabilistic schedule; one also carries a
	// Drop rule on a different host. The probabilistic outcomes must match
	// call for call, proving Drop never draws from the seeded RNG.
	run := func(withDrop bool) []bool {
		n, _ := newTestNet(t)
		_ = n.Handle("rs1", "m", func(context.Context, Message) (Message, error) { return nil, nil })
		_ = n.Handle("rs2", "m", func(context.Context, Message) (Message, error) { return nil, nil })
		inj := NewFaultInjector(7, &FaultRule{Host: "rs1", Method: "m", FailProb: 0.5})
		if withDrop {
			inj.Add(&FaultRule{Host: "rs2", Drop: true})
		}
		n.SetFaultInjector(inj)
		var out []bool
		for i := 0; i < 40; i++ {
			out = append(out, callOK(t, n) == nil)
			if withDrop {
				conn, err := n.Dial("rs2")
				if err == nil {
					_, _ = conn.Call("m", nil)
					conn.Close()
				}
			}
		}
		return out
	}
	plain, mixed := run(false), run(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("probabilistic schedule diverged at call %d once a Drop rule was active", i)
		}
	}
}

func TestFaultRemoveRestoresTraffic(t *testing.T) {
	n, m := newFaultNet(t)
	rule := &FaultRule{Host: "rs1", Drop: true}
	inj := NewFaultInjector(1, rule)
	n.SetFaultInjector(inj)
	if err := callOK(t, n); !errors.Is(err, ErrHostDown) {
		t.Fatalf("partitioned call = %v, want ErrHostDown", err)
	}
	inj.Remove(rule)
	if err := callOK(t, n); err != nil {
		t.Errorf("call after heal = %v, want success", err)
	}
	inj.Remove(rule) // double-remove is a no-op
	if got := m.Get(metrics.PartitionDrops); got != 1 {
		t.Errorf("partition drops = %d, want 1", got)
	}
}
