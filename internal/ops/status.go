package ops

import "time"

// ClusterStatus is the JSON cluster snapshot served at /statusz: the
// topology the master believes in, with enough per-server and per-region
// state to see failovers, splits, and backpressure at a glance.
type ClusterStatus struct {
	Time     time.Time      `json:"time"`
	Master   MasterStatus   `json:"master"`
	Servers  []ServerStatus `json:"servers"`
	Regions  []RegionStatus `json:"regions"`
	Journal  JournalStatus  `json:"journal"`
	Draining []string       `json:"draining,omitempty"`
}

// MasterStatus identifies the control plane: which master currently leads,
// at which fencing epoch, and which hot standbys are waiting to take over.
type MasterStatus struct {
	Host     string   `json:"host"`
	Epoch    uint64   `json:"epoch"`
	Standbys []string `json:"standbys,omitempty"`
}

// ServerStatus is one region server's liveness and load.
type ServerStatus struct {
	Host    string `json:"host"`
	Live    bool   `json:"live"`
	Fenced  bool   `json:"fenced,omitempty"`
	Regions int    `json:"regions"`
	// MemstoreBytes is the summed memstore size across hosted regions;
	// Watermark classifies it against the server's configured low/high
	// watermarks: "ok", "low" (deferring), or "high" (rejecting).
	MemstoreBytes int64  `json:"memstore_bytes"`
	Watermark     string `json:"watermark,omitempty"`
}

// RegionStatus is one region's placement and health.
type RegionStatus struct {
	Name    string `json:"name"`
	Table   string `json:"table"`
	Server  string `json:"server"`
	Epoch   uint64 `json:"epoch"`
	SizeB   int64  `json:"size_bytes"`
	Cells   int64  `json:"cells"`
	Files   int    `json:"store_files"`
	// WriteLoad is the writes observed since the last janitor pass
	// (non-destructive peek — the janitor's own hot-region counter is
	// unaffected).
	WriteLoad int64           `json:"write_load,omitempty"`
	Replicas  []ReplicaStatus `json:"replicas,omitempty"`
}

// ReplicaStatus is one read replica's placement and lag.
type ReplicaStatus struct {
	Server string `json:"server"`
	// AppliedSeq is the newest primary mutation the replica has applied;
	// LagSeq is how far behind the primary it is.
	AppliedSeq uint64 `json:"applied_seq"`
	LagSeq     uint64 `json:"lag_seq"`
}

// JournalStatus summarizes the event journal inside the snapshot.
type JournalStatus struct {
	LastSeq uint64 `json:"last_seq"`
	Len     int    `json:"len"`
	Dropped uint64 `json:"dropped,omitempty"`
}
