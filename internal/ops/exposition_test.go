package ops

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

func TestValidateExpositionAcceptsRegistryOutput(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Add(metrics.RPCCalls, 42)
	reg.Add(metrics.RowsScanned, 1000)
	reg.SetMax(metrics.MemoryPeak, 1<<20)
	for i := 0; i < 100; i++ {
		reg.Observe(metrics.HistQueryLatency, time.Duration(i)*time.Millisecond)
		reg.Observe(metrics.HistRPCLatencyPrefix+"Scan", time.Duration(i)*time.Microsecond)
	}
	var buf bytes.Buffer
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("registry exposition rejected: %v\n%s", err, buf.String())
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		payload string
		wantErr string
	}{
		{"empty", "", "no samples"},
		{"duplicate sample", "a 1\na 2\n", "duplicate sample"},
		{"duplicate labeled sample", "a{le=\"1\"} 1\na{le=\"1\"} 2\n", "duplicate sample"},
		{"non-numeric value", "a bogus\n", "non-numeric value"},
		{"missing value", "a_metric\n", "expected value"},
		{"bad name", "{le=\"1\"} 1\n", "malformed sample"},
		{"unterminated labels", "a{le=\"1\" 1\n", "unterminated label set"},
		{"unquoted label value", "a{le=1} 1\n", "unquoted label value"},
		{"double TYPE", "# TYPE a counter\n# TYPE a gauge\na 1\n", "declared twice"},
		{"unknown type", "# TYPE a widget\na 1\n", "unknown metric type"},
		{"malformed TYPE", "# TYPE a\na 1\n", "malformed TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateExposition(strings.NewReader(tc.payload))
			if err == nil {
				t.Fatalf("accepted malformed payload %q", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateExpositionAcceptsDistinctLabels(t *testing.T) {
	payload := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.001\"} 5\n" +
		"h_bucket{le=\"0.002\"} 9\n" +
		"h_bucket{le=\"+Inf\"} 10\n" +
		"h_sum 0.5\nh_count 10\n"
	if err := ValidateExposition(strings.NewReader(payload)); err != nil {
		t.Fatalf("valid histogram rejected: %v", err)
	}
}
