package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

func startTestServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s, err := StartServer(cfg)
	if err != nil {
		t.Fatalf("start ops server: %v", err)
	}
	return s
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Add(metrics.RPCCalls, 7)
	reg.Observe(metrics.HistQueryLatency, 3*time.Millisecond)

	j := NewJournal(16)
	fenced := j.Append(Event{Type: EventServerFenced, Server: "rs1"})
	j.Append(Event{Type: EventReplicaPromoted, Region: "r1", Server: "rs2", Cause: fenced})

	stats := NewStatsTable(8)
	stats.Record(QuerySample{Fingerprint: "abc", Shape: "Scan(t)", Duration: time.Millisecond, Rows: 10})

	s := startTestServer(t, ServerConfig{
		Metrics: reg,
		Journal: j,
		Stats:   stats,
		Status: func() ClusterStatus {
			return ClusterStatus{
				Servers: []ServerStatus{{Host: "rs2", Live: true, Regions: 1}},
				Regions: []RegionStatus{{Name: "r1", Table: "t", Server: "rs2", Epoch: 2}},
			}
		},
	})
	defer s.Close()

	code, body := get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "shc_rpc_calls 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if err := ValidateExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics not well-formed: %v", err)
	}

	code, body = get(t, s.URL()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, s.URL()+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var st ClusterStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if len(st.Servers) != 1 || st.Servers[0].Host != "rs2" || st.Regions[0].Epoch != 2 {
		t.Fatalf("bad /statusz: %+v", st)
	}

	code, body = get(t, s.URL()+"/events?type=ReplicaPromoted")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var ev struct {
		LastSeq uint64  `json:"last_seq"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &ev); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if ev.LastSeq != 2 || len(ev.Events) != 1 || ev.Events[0].Cause != fenced {
		t.Fatalf("bad /events: %+v", ev)
	}

	code, body = get(t, s.URL()+"/queries?n=5")
	if code != http.StatusOK {
		t.Fatalf("/queries status %d", code)
	}
	var qs struct {
		Queries []QueryStat `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &qs); err != nil {
		t.Fatalf("/queries not JSON: %v", err)
	}
	if len(qs.Queries) != 1 || qs.Queries[0].Fingerprint != "abc" || qs.Queries[0].Rows != 10 {
		t.Fatalf("bad /queries: %+v", qs)
	}

	if code, _ = get(t, s.URL()+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, _ = get(t, s.URL()+"/events?since=notanumber"); code != http.StatusBadRequest {
		t.Fatalf("bad since param returned %d, want 400", code)
	}
}

func TestOpsServerUnhealthy(t *testing.T) {
	s := startTestServer(t, ServerConfig{
		Health: func() error { return fmt.Errorf("no live servers") },
	})
	defer s.Close()
	code, body := get(t, s.URL()+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no live servers") {
		t.Fatalf("/healthz = %d %q, want 503", code, body)
	}
}

func TestOpsServerEmptySources(t *testing.T) {
	s := startTestServer(t, ServerConfig{})
	defer s.Close()
	for _, path := range []string{"/healthz", "/statusz", "/events", "/queries"} {
		code, _ := get(t, s.URL()+path)
		if code != http.StatusOK {
			t.Fatalf("%s with nil sources = %d", path, code)
		}
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base, tolerating runtime background goroutines that need a moment to
// exit after a connection closes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOpsServerCloseLeaksNothing(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := metrics.NewRegistry()
	reg.Inc(metrics.RPCCalls)
	s := startTestServer(t, ServerConfig{Metrics: reg})
	addr := s.Addr()
	if code, _ := get(t, s.URL()+"/metrics"); code != http.StatusOK {
		t.Fatal("scrape before close failed")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Close")
	}
	waitGoroutines(t, base)
}

func TestOpsServerCloseMidScrape(t *testing.T) {
	base := runtime.NumGoroutine()
	s := startTestServer(t, ServerConfig{Metrics: metrics.NewRegistry()})

	// A client that connects and sends only half a request is an active
	// connection graceful shutdown cannot drain; Close must hard-stop it
	// instead of hanging or leaking the serve goroutine.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: ops\r\n")); err != nil {
		t.Fatalf("partial write: %v", err)
	}

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a mid-scrape connection")
	}
	conn.Close()
	waitGoroutines(t, base)
}
