// Package ops is the cluster operations plane: a structured journal of
// cluster lifecycle events (splits, failovers, promotions, fencing,
// backpressure), a statement-fingerprint statistics table, and an HTTP
// endpoint that makes both — plus the metrics registry and a cluster
// topology snapshot — scrapeable from outside the process. PR 4 gave each
// query deep observability; this package gives the *cluster* the same
// treatment, modeled on HiveServer2's operational surface (web UI, query
// history, workload metrics) that carried Hive from reproduction to
// production system.
package ops

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventType names one kind of cluster lifecycle event.
type EventType string

// The event vocabulary. Every type is emitted from exactly the code path
// that performs the transition, not inferred after the fact.
const (
	// EventServerFenced: the master declared a server dead (or the server
	// self-fenced on an expired lease) and its regions stopped being served
	// there. Region-level recovery events carry this event's seq as their
	// Cause.
	EventServerFenced EventType = "ServerFenced"
	// EventRegionReassigned: a region moved to a new server — WAL-replay
	// failover, drain, or balance (Detail says which).
	EventRegionReassigned EventType = "RegionReassigned"
	// EventReplicaPromoted: a secondary copy took over a region whose
	// primary died, with no WAL replay.
	EventReplicaPromoted EventType = "ReplicaPromoted"
	// EventServerDrained: a server was gracefully removed; per-region moves
	// follow as RegionReassigned events caused by this one.
	EventServerDrained EventType = "ServerDrained"
	// EventRegionSplit: a region split into two daughters (Detail names
	// them; Cause links to the janitor pass for automatic splits).
	EventRegionSplit EventType = "RegionSplit"
	// EventSplitRolledForward / EventSplitRolledBack: recovery settled an
	// interrupted split transaction.
	EventSplitRolledForward EventType = "SplitRolledForward"
	EventSplitRolledBack    EventType = "SplitRolledBack"
	// EventJanitorAction: one master housekeeping pass ran; splits and
	// balance moves it performed carry its seq as Cause.
	EventJanitorAction EventType = "JanitorAction"
	// EventMemstoreBackpressure: a server rejected a write above its
	// memstore high watermark.
	EventMemstoreBackpressure EventType = "MemstoreBackpressure"
	// EventCircuitOpen: a client circuit breaker opened against a host.
	EventCircuitOpen EventType = "CircuitOpen"
	// EventMasterElected: a master won the leader election (Epoch is its
	// master fencing epoch). Recovery actions a takeover performs — split
	// journals settled, servers re-declared dead — carry this event's seq
	// as their Cause.
	EventMasterElected EventType = "MasterElected"
	// EventMasterFailover: a standby finished taking over from a lost
	// leader; Cause links back to the MasterElected event that started the
	// takeover.
	EventMasterFailover EventType = "MasterFailover"
)

// Event is one journal entry. Seq is assigned by the journal and strictly
// increases; Cause is the Seq of the event that triggered this one (0 when
// the event is a root cause), which is what lets a test or operator walk a
// failover causally — the ReplicaPromoted entry points at the ServerFenced
// entry that made promotion necessary.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   EventType `json:"type"`
	Region string    `json:"region,omitempty"`
	Table  string    `json:"table,omitempty"`
	Server string    `json:"server,omitempty"`
	Epoch  uint64    `json:"epoch,omitempty"`
	Cause  uint64    `json:"cause,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Journal is a bounded, seq-numbered in-memory ring of cluster events with
// an optional JSONL sink. Appends are cheap (one mutex, no allocation
// beyond the ring slot) so lifecycle code paths emit unconditionally; a nil
// *Journal swallows appends, so wiring is optional everywhere.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest retained event
	n       int // retained events
	next    uint64
	dropped uint64
	sink    io.Writer
}

// DefaultJournalCapacity bounds the ring when the caller does not.
const DefaultJournalCapacity = 1024

// NewJournal creates a journal retaining at most capacity events
// (DefaultJournalCapacity when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{buf: make([]Event, capacity)}
}

// SetSink installs a writer that receives every appended event as one JSON
// line — the durable tail for deployments that want history beyond the
// ring. nil removes it. Writes happen under the journal lock, in append
// order; sink errors are ignored (the journal is observability, not the
// data path).
func (j *Journal) SetSink(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = w
	j.mu.Unlock()
}

// Append assigns the event a seq (and a timestamp when it has none),
// retains it in the ring, and returns the seq for use as a Cause link.
// Appending to a nil journal returns 0, the "no cause" sentinel.
func (j *Journal) Append(e Event) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.next++
	e.Seq = j.next
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if j.n == len(j.buf) {
		j.buf[j.head] = e
		j.head = (j.head + 1) % len(j.buf)
		j.dropped++
	} else {
		j.buf[(j.head+j.n)%len(j.buf)] = e
		j.n++
	}
	if j.sink != nil {
		if data, err := json.Marshal(e); err == nil {
			j.sink.Write(append(data, '\n'))
		}
	}
	return e.Seq
}

// Filter selects journal events. The zero value selects everything
// retained.
type Filter struct {
	// Types keeps only the listed event types (empty = all).
	Types []EventType
	// Region / Server keep only events touching that region / server.
	Region string
	Server string
	// SinceSeq keeps only events with Seq > SinceSeq.
	SinceSeq uint64
	// Last keeps only the newest N matches (0 = all).
	Last int
}

func (f Filter) match(e Event) bool {
	if len(f.Types) > 0 {
		ok := false
		for _, t := range f.Types {
			if e.Type == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.Region != "" && e.Region != f.Region {
		return false
	}
	if f.Server != "" && e.Server != f.Server {
		return false
	}
	return e.Seq > f.SinceSeq
}

// Events returns the retained events matching f, oldest first.
func (j *Journal) Events(f Filter) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.head+i)%len(j.buf)]
		if f.match(e) {
			out = append(out, e)
		}
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}

// Find returns the retained events of one type, oldest first — the
// harness-test shorthand for asserting on the stream ("exactly one
// ReplicaPromoted").
func (j *Journal) Find(t EventType) []Event {
	return j.Events(Filter{Types: []EventType{t}})
}

// Get returns the retained event with the given seq, if still in the ring.
func (j *Journal) Get(seq uint64) (Event, bool) {
	if j == nil {
		return Event{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := 0; i < j.n; i++ {
		e := j.buf[(j.head+i)%len(j.buf)]
		if e.Seq == seq {
			return e, true
		}
	}
	return Event{}, false
}

// Len reports how many events the ring currently retains.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// LastSeq reports the seq of the newest event ever appended (0 = none).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped reports how many events the bounded ring has evicted.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}
