package ops

import (
	"fmt"
	"testing"
	"time"
)

func TestStatsTableAggregates(t *testing.T) {
	tab := NewStatsTable(8)
	for i := 0; i < 3; i++ {
		tab.Record(QuerySample{
			Fingerprint: "abc", Shape: "Scan(t)->Filter(?)",
			Duration: 10 * time.Millisecond, Rows: 100, Bytes: 4096, Retries: 1,
		})
	}
	tab.Record(QuerySample{Fingerprint: "abc", Duration: 40 * time.Millisecond, Rows: 5, Shed: 2, Err: true})

	st, ok := tab.Get("abc")
	if !ok {
		t.Fatal("fingerprint missing")
	}
	if st.Count != 4 || st.Rows != 305 || st.Bytes != 3*4096 || st.Retries != 3 || st.Shed != 2 || st.Errors != 1 {
		t.Fatalf("bad aggregate: %+v", st)
	}
	if st.Shape != "Scan(t)->Filter(?)" {
		t.Fatalf("shape = %q", st.Shape)
	}
	if st.TotalMs != 70 {
		t.Fatalf("total = %dms, want 70", st.TotalMs)
	}
	if st.MaxMs < 40 {
		t.Fatalf("max = %dms, want >= 40", st.MaxMs)
	}
	if st.P99Ms < st.P50Ms {
		t.Fatalf("p99 %d < p50 %d", st.P99Ms, st.P50Ms)
	}
}

func TestStatsTableTopOrdering(t *testing.T) {
	tab := NewStatsTable(8)
	tab.Record(QuerySample{Fingerprint: "light", Duration: time.Millisecond})
	for i := 0; i < 5; i++ {
		tab.Record(QuerySample{Fingerprint: "heavy", Duration: 100 * time.Millisecond})
	}
	tab.Record(QuerySample{Fingerprint: "mid", Duration: 50 * time.Millisecond})

	top := tab.Top(2)
	if len(top) != 2 {
		t.Fatalf("top(2) returned %d", len(top))
	}
	if top[0].Fingerprint != "heavy" || top[1].Fingerprint != "mid" {
		t.Fatalf("order = [%s %s], want [heavy mid]", top[0].Fingerprint, top[1].Fingerprint)
	}
	if all := tab.Top(0); len(all) != 3 {
		t.Fatalf("top(0) returned %d, want all 3", len(all))
	}
}

func TestStatsTableEvictsColdest(t *testing.T) {
	tab := NewStatsTable(2)
	tab.Record(QuerySample{Fingerprint: "hot", Duration: time.Millisecond})
	tab.Record(QuerySample{Fingerprint: "hot", Duration: time.Millisecond})
	tab.Record(QuerySample{Fingerprint: "cold", Duration: time.Millisecond})
	tab.Record(QuerySample{Fingerprint: "new", Duration: time.Millisecond})

	if tab.Len() != 2 {
		t.Fatalf("len = %d, want 2", tab.Len())
	}
	if tab.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tab.Evicted())
	}
	if _, ok := tab.Get("cold"); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if _, ok := tab.Get("hot"); !ok {
		t.Fatal("hottest entry was evicted")
	}
}

func TestStatsTableBounded(t *testing.T) {
	tab := NewStatsTable(16)
	for i := 0; i < 200; i++ {
		tab.Record(QuerySample{Fingerprint: fmt.Sprintf("fp-%d", i), Duration: time.Millisecond})
	}
	if tab.Len() != 16 {
		t.Fatalf("len = %d, want 16", tab.Len())
	}
}

func TestStatsTableSlowLog(t *testing.T) {
	tab := NewStatsTable(0)
	tab.Record(QuerySample{Fingerprint: "abc", Shape: "Scan(t)", Duration: time.Second})
	tab.RecordSlow("abc", "Scan(t)", "slow-query dur=1s shape=Scan(t)")
	tab.RecordSlow("abc", "Scan(t)", "slow-query dur=2s shape=Scan(t)")

	st, _ := tab.Get("abc")
	if st.SlowCount != 2 {
		t.Fatalf("slow count = %d, want 2", st.SlowCount)
	}
	if st.LastSlow != "slow-query dur=2s shape=Scan(t)" {
		t.Fatalf("last slow = %q", st.LastSlow)
	}
}

func TestStatsTableNilSafe(t *testing.T) {
	var tab *StatsTable
	tab.Record(QuerySample{Fingerprint: "x"})
	tab.RecordSlow("x", "", "line")
	if tab.Top(5) != nil || tab.Len() != 0 || tab.Evicted() != 0 {
		t.Fatal("nil table accessors not zero")
	}
	if _, ok := tab.Get("x"); ok {
		t.Fatal("nil table Get returned ok")
	}
	// Empty fingerprints are dropped, not aggregated under "".
	real := NewStatsTable(4)
	real.Record(QuerySample{Duration: time.Millisecond})
	if real.Len() != 0 {
		t.Fatal("empty fingerprint was recorded")
	}
}
