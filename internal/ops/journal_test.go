package ops

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJournalSeqAndCause(t *testing.T) {
	j := NewJournal(16)
	fenced := j.Append(Event{Type: EventServerFenced, Server: "rs1"})
	if fenced != 1 {
		t.Fatalf("first seq = %d, want 1", fenced)
	}
	promoted := j.Append(Event{Type: EventReplicaPromoted, Region: "r1", Server: "rs2", Cause: fenced})
	if promoted != 2 {
		t.Fatalf("second seq = %d, want 2", promoted)
	}
	events := j.Find(EventReplicaPromoted)
	if len(events) != 1 {
		t.Fatalf("got %d ReplicaPromoted events, want 1", len(events))
	}
	if events[0].Cause != fenced {
		t.Fatalf("cause = %d, want %d", events[0].Cause, fenced)
	}
	root, ok := j.Get(events[0].Cause)
	if !ok || root.Type != EventServerFenced || root.Server != "rs1" {
		t.Fatalf("cause walk landed on %+v, want the ServerFenced event", root)
	}
	if events[0].Time.IsZero() {
		t.Fatal("append did not stamp a time")
	}
}

func TestJournalRingEviction(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Type: EventRegionSplit})
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	if j.LastSeq() != 10 {
		t.Fatalf("last seq = %d, want 10", j.LastSeq())
	}
	events := j.Events(Filter{})
	if len(events) != 4 || events[0].Seq != 7 || events[3].Seq != 10 {
		t.Fatalf("retained seqs = %v, want [7..10]", seqs(events))
	}
	if _, ok := j.Get(3); ok {
		t.Fatal("evicted event still retrievable")
	}
}

func TestJournalFilters(t *testing.T) {
	j := NewJournal(0)
	j.Append(Event{Type: EventServerFenced, Server: "rs1"})
	j.Append(Event{Type: EventRegionReassigned, Region: "r1", Server: "rs2"})
	j.Append(Event{Type: EventRegionReassigned, Region: "r2", Server: "rs2"})
	j.Append(Event{Type: EventRegionSplit, Region: "r1"})

	if got := j.Events(Filter{Types: []EventType{EventRegionReassigned}}); len(got) != 2 {
		t.Fatalf("type filter: got %d, want 2", len(got))
	}
	if got := j.Events(Filter{Region: "r1"}); len(got) != 2 {
		t.Fatalf("region filter: got %d, want 2", len(got))
	}
	if got := j.Events(Filter{Server: "rs2"}); len(got) != 2 {
		t.Fatalf("server filter: got %d, want 2", len(got))
	}
	if got := j.Events(Filter{SinceSeq: 2}); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("since filter: got %v", seqs(got))
	}
	if got := j.Events(Filter{Last: 1}); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("last filter: got %v", seqs(got))
	}
	if got := j.Events(Filter{Types: []EventType{EventRegionReassigned}, Server: "rs2", Last: 1}); len(got) != 1 || got[0].Region != "r2" {
		t.Fatalf("combined filter: got %+v", got)
	}
}

func TestJournalSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2)
	j.SetSink(&buf)
	j.Append(Event{Type: EventServerFenced, Server: "rs1"})
	j.Append(Event{Type: EventRegionSplit, Region: "r1"})
	j.Append(Event{Type: EventRegionSplit, Region: "r2"}) // evicts from ring, still sunk
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink got %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("sink line %q is not JSON: %v", line, err)
		}
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if seq := j.Append(Event{Type: EventServerFenced}); seq != 0 {
		t.Fatalf("nil append returned seq %d, want 0", seq)
	}
	if j.Events(Filter{}) != nil || j.Len() != 0 || j.LastSeq() != 0 || j.Dropped() != 0 {
		t.Fatal("nil journal accessors not zero")
	}
	if _, ok := j.Get(1); ok {
		t.Fatal("nil journal Get returned ok")
	}
	j.SetSink(&bytes.Buffer{}) // must not panic
}

func seqs(events []Event) []uint64 {
	out := make([]uint64, len(events))
	for i, e := range events {
		out[i] = e.Seq
	}
	return out
}
