package ops

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text-exposition payload for
// well-formedness: every line parses (comment, blank, or sample), sample
// values are numeric, no metric/label pair appears twice, and no metric is
// TYPE-declared twice. This is what the CI scrape step runs against a live
// /metrics endpoint — a cheap structural check, not a full openmetrics
// parser.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{}
	seen := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if prev, ok := types[name]; ok {
					return fmt.Errorf("line %d: metric %s TYPE declared twice (%s, %s)", lineNo, name, prev, kind)
				}
				types[name] = kind
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fmt.Errorf("line %d: non-numeric value %q", lineNo, value)
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// parseSample splits one sample line into metric name, canonical label
// string, and value text.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	i := 0
	for i < len(rest) && isNameChar(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", "", "", fmt.Errorf("malformed sample: %q", line)
	}
	name, rest = rest[:i], rest[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", "", "", fmt.Errorf("unterminated label set: %q", line)
		}
		labels, rest = rest[1:end], rest[end+1:]
		for _, pair := range splitLabels(labels) {
			eq := strings.Index(pair, "=")
			if eq <= 0 {
				return "", "", "", fmt.Errorf("malformed label %q in %q", pair, line)
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", "", fmt.Errorf("unquoted label value %q in %q", pair, line)
			}
		}
	}
	fields := strings.Fields(rest)
	// Value, optionally followed by a timestamp.
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", fmt.Errorf("expected value after metric in %q", line)
	}
	return name, labels, fields[0], nil
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if part := strings.TrimSpace(s[start:i]); part != "" {
					out = append(out, part)
				}
				start = i + 1
			}
		}
	}
	if part := strings.TrimSpace(s[start:]); part != "" {
		out = append(out, part)
	}
	return out
}
