package ops

import (
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// QuerySample is one executed statement's contribution to the fingerprint
// table.
type QuerySample struct {
	// Fingerprint is the statement-shape hash (plan.Fingerprint); Shape is
	// its human-readable normalized form, kept for display.
	Fingerprint string
	Shape       string
	Duration    time.Duration
	Rows        int64
	Bytes       int64
	Retries     int64
	Shed        int64
	Err         bool
}

// QueryStat is the aggregated state for one statement fingerprint.
type QueryStat struct {
	Fingerprint string `json:"fingerprint"`
	Shape       string `json:"shape"`
	Count       int64  `json:"count"`
	Errors      int64  `json:"errors,omitempty"`
	Rows        int64  `json:"rows"`
	Bytes       int64  `json:"bytes,omitempty"`
	Retries     int64  `json:"retries,omitempty"`
	Shed        int64  `json:"shed,omitempty"`
	// TotalMs is the summed wall time — what "top" orders by.
	TotalMs int64 `json:"total_ms"`
	P50Ms   int64 `json:"p50_ms"`
	P95Ms   int64 `json:"p95_ms"`
	P99Ms   int64 `json:"p99_ms"`
	MaxMs   int64 `json:"max_ms"`
	// SlowCount and LastSlow key the slow-query log by fingerprint: how many
	// runs of this shape crossed the threshold, and the most recent log line.
	SlowCount int64  `json:"slow_count,omitempty"`
	LastSlow  string `json:"last_slow,omitempty"`
}

// statEntry is the live aggregate behind one QueryStat.
type statEntry struct {
	shape     string
	count     int64
	errors    int64
	rows      int64
	bytes     int64
	retries   int64
	shed      int64
	total     time.Duration
	slowCount int64
	lastSlow  string
	hist      metrics.Histogram
}

// DefaultStatsSize bounds the fingerprint table when the caller does not.
const DefaultStatsSize = 256

// StatsTable aggregates per-fingerprint runtime statistics — the workload
// view Shark-style runtime re-optimization and the ROADMAP item-2 plan
// cache both need, and the substance of the ops endpoint's /queries. It is
// bounded top-K: when full, a new fingerprint evicts the least-run entry,
// so a scan of distinct ad-hoc shapes cannot grow it without bound.
type StatsTable struct {
	mu      sync.Mutex
	entries map[string]*statEntry
	max     int
	evicted int64
}

// NewStatsTable creates a table retaining at most max fingerprints
// (DefaultStatsSize when max <= 0).
func NewStatsTable(max int) *StatsTable {
	if max <= 0 {
		max = DefaultStatsSize
	}
	return &StatsTable{entries: make(map[string]*statEntry), max: max}
}

// Record folds one executed statement into its fingerprint's aggregate.
func (t *StatsTable) Record(s QuerySample) {
	if t == nil || s.Fingerprint == "" {
		return
	}
	t.mu.Lock()
	e := t.entryLocked(s.Fingerprint, s.Shape)
	e.count++
	if s.Err {
		e.errors++
	}
	e.rows += s.Rows
	e.bytes += s.Bytes
	e.retries += s.Retries
	e.shed += s.Shed
	e.total += s.Duration
	t.mu.Unlock()
	// The histogram is internally atomic; observing outside the table lock
	// keeps Record cheap on the query path.
	e.hist.Observe(s.Duration)
}

// RecordSlow attaches one slow-query log line to its fingerprint.
func (t *StatsTable) RecordSlow(fingerprint, shape, line string) {
	if t == nil || fingerprint == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.entryLocked(fingerprint, shape)
	e.slowCount++
	e.lastSlow = line
}

// entryLocked resolves (or creates, evicting if full) the fingerprint's
// entry. Caller holds t.mu.
func (t *StatsTable) entryLocked(fp, shape string) *statEntry {
	if e, ok := t.entries[fp]; ok {
		if e.shape == "" {
			e.shape = shape
		}
		return e
	}
	if len(t.entries) >= t.max {
		var coldKey string
		var cold *statEntry
		for k, e := range t.entries {
			if cold == nil || e.count < cold.count {
				coldKey, cold = k, e
			}
		}
		delete(t.entries, coldKey)
		t.evicted++
	}
	e := &statEntry{shape: shape}
	t.entries[fp] = e
	return e
}

// snapshot renders one entry. Caller holds t.mu.
func (e *statEntry) snapshot(fp string) QueryStat {
	ms := func(d time.Duration) int64 { return d.Milliseconds() }
	return QueryStat{
		Fingerprint: fp,
		Shape:       e.shape,
		Count:       e.count,
		Errors:      e.errors,
		Rows:        e.rows,
		Bytes:       e.bytes,
		Retries:     e.retries,
		Shed:        e.shed,
		TotalMs:     ms(e.total),
		P50Ms:       ms(e.hist.Quantile(0.50)),
		P95Ms:       ms(e.hist.Quantile(0.95)),
		P99Ms:       ms(e.hist.Quantile(0.99)),
		MaxMs:       ms(e.hist.Max()),
		SlowCount:   e.slowCount,
		LastSlow:    e.lastSlow,
	}
}

// Top returns up to n fingerprints ordered by total wall time, heaviest
// first (n <= 0 = all).
func (t *StatsTable) Top(n int) []QueryStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]QueryStat, 0, len(t.entries))
	for fp, e := range t.entries {
		out = append(out, e.snapshot(fp))
	}
	t.mu.Unlock()
	// Insertion sort by (TotalMs, Count, Fingerprint) — the table is small.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && heavier(out[k], out[k-1]); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func heavier(a, b QueryStat) bool {
	if a.TotalMs != b.TotalMs {
		return a.TotalMs > b.TotalMs
	}
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Fingerprint < b.Fingerprint
}

// Get returns the aggregate for one fingerprint.
func (t *StatsTable) Get(fingerprint string) (QueryStat, bool) {
	if t == nil {
		return QueryStat{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[fingerprint]
	if !ok {
		return QueryStat{}, false
	}
	return e.snapshot(fingerprint), true
}

// Len reports how many fingerprints the table retains.
func (t *StatsTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Evicted reports how many fingerprints the bounded table has dropped.
func (t *StatsTable) Evicted() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}
