package ops

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// ServerConfig wires the ops endpoint to its data sources. Every source is
// optional: a missing one makes its endpoint serve an empty (but
// well-formed) response rather than fail, so the server can front a
// partially-assembled stack.
type ServerConfig struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr    string
	Metrics *metrics.Registry
	Journal *Journal
	Stats   *StatsTable
	// Status produces the /statusz cluster snapshot.
	Status func() ClusterStatus
	// Health reports readiness for /healthz; nil error = healthy. A nil
	// func is always healthy.
	Health func() error
}

// Server is the HTTP ops endpoint: /metrics (Prometheus exposition),
// /healthz, /statusz (cluster snapshot), /events (journal tail),
// /queries (fingerprint table), and /debug/pprof (with pprof labels
// attached by the engine and exec layers, so profiles attribute CPU to
// query fingerprints and regions). It binds its own mux — never the
// process-global DefaultServeMux — so tests can run many instances.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	srv *http.Server
	done chan struct{}
}

// StartServer binds cfg.Addr and serves until Close. The returned server
// is already accepting when this returns, so a caller can scrape
// immediately.
func StartServer(cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/queries", s.handleQueries)
	// pprof handlers are registered on our mux explicitly — importing
	// net/http/pprof for its side effect would pollute DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (resolving ":0" to the real port).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close shuts the server down: graceful drain first so an in-flight
// scrape completes, then a hard close so a stuck one cannot leak the
// listener or the serve goroutine.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WriteExposition(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Health != nil {
		if err := s.cfg.Health(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var st ClusterStatus
	if s.cfg.Status != nil {
		st = s.cfg.Status()
	}
	if st.Time.IsZero() {
		st.Time = time.Now()
	}
	writeJSON(w, st)
}

// handleEvents serves the journal tail. Query params map onto Filter:
// ?type=ReplicaPromoted,ServerFenced&region=r&server=h&since=seq&last=n.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f Filter
	if ts := q.Get("type"); ts != "" {
		for _, t := range strings.Split(ts, ",") {
			if t = strings.TrimSpace(t); t != "" {
				f.Types = append(f.Types, EventType(t))
			}
		}
	}
	f.Region = q.Get("region")
	f.Server = q.Get("server")
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		f.SinceSeq = n
	}
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad last: "+err.Error(), http.StatusBadRequest)
			return
		}
		f.Last = n
	}
	events := s.cfg.Journal.Events(f)
	if events == nil {
		events = []Event{}
	}
	writeJSON(w, struct {
		LastSeq uint64  `json:"last_seq"`
		Dropped uint64  `json:"dropped,omitempty"`
		Events  []Event `json:"events"`
	}{s.cfg.Journal.LastSeq(), s.cfg.Journal.Dropped(), events})
}

// handleQueries serves the fingerprint table, heaviest first (?n= caps it).
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		n = parsed
	}
	stats := s.cfg.Stats.Top(n)
	if stats == nil {
		stats = []QueryStat{}
	}
	writeJSON(w, struct {
		Queries []QueryStat `json:"queries"`
	}{stats})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
