package security

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func TestKDCAuthenticate(t *testing.T) {
	kdc := NewKDC()
	kdc.AddPrincipal("ambari-qa@EXAMPLE.COM", "smokeuser.headless.keytab")
	if err := kdc.Authenticate("ambari-qa@EXAMPLE.COM", "smokeuser.headless.keytab"); err != nil {
		t.Fatal(err)
	}
	if err := kdc.Authenticate("ambari-qa@EXAMPLE.COM", "wrong"); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("bad keytab: %v", err)
	}
	if err := kdc.Authenticate("ghost@EXAMPLE.COM", "x"); !errors.Is(err, ErrNoPrincipal) {
		t.Errorf("unknown principal: %v", err)
	}
}

func newTestService(t *testing.T, clock *fakeClock, lifetime time.Duration) *TokenService {
	t.Helper()
	kdc := NewKDC()
	kdc.AddPrincipal("user", "keytab")
	return NewTokenService("clusterA", kdc, lifetime, clock.Now, metrics.NewRegistry())
}

func TestIssueAndValidate(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, err := svc.Issue("user", "keytab")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(tok.Encode()); err != nil {
		t.Errorf("fresh token must validate: %v", err)
	}
	if _, err := svc.Issue("user", "bad"); err == nil {
		t.Error("issue with bad keytab must fail")
	}
}

func TestTokenExpiry(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, _ := svc.Issue("user", "keytab")
	clock.Advance(2 * time.Hour)
	if err := svc.Validate(tok.Encode()); !errors.Is(err, ErrTokenExpired) {
		t.Errorf("expired token: %v", err)
	}
}

func TestTokenTamperingDetected(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, _ := svc.Issue("user", "keytab")
	tok.Principal = "attacker"
	if err := svc.Validate(tok.Encode()); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("tampered token: %v", err)
	}
	if err := svc.Validate("!!!not-base64!!!"); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("garbage token: %v", err)
	}
}

func TestTokenWrongCluster(t *testing.T) {
	clock := newFakeClock()
	kdc := NewKDC()
	kdc.AddPrincipal("user", "keytab")
	a := NewTokenService("clusterA", kdc, time.Hour, clock.Now, nil)
	b := NewTokenService("clusterB", kdc, time.Hour, clock.Now, nil)
	tok, _ := a.Issue("user", "keytab")
	if err := b.Validate(tok.Encode()); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("cross-cluster token: %v", err)
	}
}

func TestTokenRevocation(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, _ := svc.Issue("user", "keytab")
	svc.Revoke(tok.ID)
	if err := svc.Validate(tok.Encode()); !errors.Is(err, ErrTokenInvalid) {
		t.Errorf("revoked token: %v", err)
	}
}

func TestRenew(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, _ := svc.Issue("user", "keytab")
	clock.Advance(30 * time.Minute)
	renewed, err := svc.Renew(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !renewed.ExpiresAt.After(tok.ExpiresAt) {
		t.Error("renewal must extend expiry")
	}
	clock.Advance(45 * time.Minute) // original would be dead, renewal lives
	if err := svc.Validate(renewed.Encode()); err != nil {
		t.Errorf("renewed token must validate: %v", err)
	}
	clock.Advance(2 * time.Hour)
	if _, err := svc.Renew(renewed); err == nil {
		t.Error("renewing an expired token must fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	clock := newFakeClock()
	svc := newTestService(t, clock, time.Hour)
	tok, _ := svc.Issue("user", "keytab")
	got, err := DecodeToken(tok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tok.ID || got.Cluster != tok.Cluster || got.Signature != tok.Signature {
		t.Errorf("round trip mismatch: %+v vs %+v", got, tok)
	}
}

func newManagerWith(t *testing.T, clock *fakeClock, lifetime time.Duration, clusters ...string) (*CredentialsManager, map[string]*TokenService, *metrics.Registry) {
	t.Helper()
	kdc := NewKDC()
	kdc.AddPrincipal("user", "keytab")
	meter := metrics.NewRegistry()
	m := NewCredentialsManager(CredentialsConfig{
		Enabled:   true,
		Principal: "user",
		Keytab:    "keytab",
		Now:       clock.Now,
	}, meter)
	svcs := make(map[string]*TokenService)
	for _, c := range clusters {
		svc := NewTokenService(c, kdc, lifetime, clock.Now, meter)
		m.RegisterCluster(svc)
		svcs[c] = svc
	}
	return m, svcs, meter
}

func TestManagerDisabledByDefault(t *testing.T) {
	m := NewCredentialsManager(CredentialsConfig{}, nil)
	if _, err := m.TokenForCluster("a"); err == nil {
		t.Error("disabled manager must refuse")
	}
}

func TestManagerCachesTokens(t *testing.T) {
	clock := newFakeClock()
	m, svcs, meter := newManagerWith(t, clock, time.Hour, "a")
	t1, err := m.TokenForCluster("a")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.TokenForCluster("a")
	if err != nil {
		t.Fatal(err)
	}
	if t1.ID != t2.ID {
		t.Error("second request must hit the cache")
	}
	if meter.Get(metrics.TokensCacheHits) != 1 || meter.Get(metrics.TokensFetched) != 1 {
		t.Errorf("cache metering: hits=%d fetched=%d", meter.Get(metrics.TokensCacheHits), meter.Get(metrics.TokensFetched))
	}
	if err := svcs["a"].Validate(t2.Encode()); err != nil {
		t.Errorf("cached token must be valid: %v", err)
	}
}

func TestManagerRefetchesNearExpiry(t *testing.T) {
	clock := newFakeClock()
	m, _, _ := newManagerWith(t, clock, time.Hour, "a")
	t1, _ := m.TokenForCluster("a")
	clock.Advance(58 * time.Minute) // past 0.95 of lifetime
	t2, err := m.TokenForCluster("a")
	if err != nil {
		t.Fatal(err)
	}
	if t2.ID == t1.ID {
		t.Error("near-expiry token must be replaced")
	}
}

func TestManagerMultipleClusters(t *testing.T) {
	clock := newFakeClock()
	m, svcs, _ := newManagerWith(t, clock, time.Hour, "hbase1", "hbase2")
	tok1, err := m.Token("hbase1")
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := m.Token("hbase2")
	if err != nil {
		t.Fatal(err)
	}
	if err := svcs["hbase1"].Validate(tok1); err != nil {
		t.Error(err)
	}
	if err := svcs["hbase2"].Validate(tok2); err != nil {
		t.Error(err)
	}
	if err := svcs["hbase2"].Validate(tok1); err == nil {
		t.Error("cluster1 token must not validate on cluster2")
	}
	if len(m.CachedClusters()) != 2 {
		t.Errorf("cached clusters = %v", m.CachedClusters())
	}
	if _, err := m.Token("unknown"); err == nil {
		t.Error("unregistered cluster must fail")
	}
}

func TestManagerBackgroundRefresh(t *testing.T) {
	clock := newFakeClock()
	m, _, meter := newManagerWith(t, clock, time.Hour, "a")
	t1, _ := m.TokenForCluster("a")
	clock.Advance(40 * time.Minute) // past RefreshTimeFraction (0.6)
	n, err := m.RefreshNow()
	if err != nil || n != 1 {
		t.Fatalf("RefreshNow = %d, %v", n, err)
	}
	t2, _ := m.TokenForCluster("a")
	if t2.ID != t1.ID {
		t.Error("renewal keeps the token ID")
	}
	if !t2.ExpiresAt.After(t1.ExpiresAt) {
		t.Error("renewal must extend expiry")
	}
	if meter.Get(metrics.TokensRenewed) != 1 {
		t.Errorf("renewals metered = %d", meter.Get(metrics.TokensRenewed))
	}
	// Fresh token is not refreshed again immediately.
	if n, _ := m.RefreshNow(); n != 0 {
		t.Errorf("fresh token refreshed: %d", n)
	}
}

func TestManagerRefreshDropsDeadTokens(t *testing.T) {
	clock := newFakeClock()
	m, _, _ := newManagerWith(t, clock, time.Hour, "a")
	t1, _ := m.TokenForCluster("a")
	clock.Advance(2 * time.Hour) // token fully expired; renew will fail
	n, err := m.RefreshNow()
	if n != 0 || err == nil {
		t.Fatalf("RefreshNow on dead token = %d, %v", n, err)
	}
	// Next request falls back to a fresh issue.
	t2, err := m.TokenForCluster("a")
	if err != nil {
		t.Fatal(err)
	}
	if t2.ID == t1.ID {
		t.Error("dead token must be replaced by a fresh issue")
	}
}

func TestManagerStartStop(t *testing.T) {
	clock := newFakeClock()
	m, _, _ := newManagerWith(t, clock, time.Hour, "a")
	m.cfg.RefreshDuration = time.Millisecond
	m.Start()
	if _, err := m.TokenForCluster("a"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	m.Stop()
	m.Stop() // idempotent
	select {
	case <-m.done:
	case <-time.After(time.Second):
		t.Fatal("refresher did not stop")
	}
}
