// Package security simulates the Kerberos + delegation-token machinery SHC
// integrates with (paper §V-B.2): a KDC holding principals and keytabs, a
// per-cluster token service that issues and validates time-limited
// delegation tokens, and the CredentialsManager — the paper's
// SHCCredentialsManager — which fetches tokens on demand, caches them per
// cluster, renews them before expiry, and serializes them for propagation
// to executors.
package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// Errors returned by the security layer.
var (
	ErrAuthFailed   = errors.New("security: authentication failed")
	ErrTokenExpired = errors.New("security: token expired")
	ErrTokenInvalid = errors.New("security: token invalid")
	ErrNoPrincipal  = errors.New("security: unknown principal")
)

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// KDC is the key-distribution center: it knows every principal and the
// secret its keytab must carry.
type KDC struct {
	mu         sync.RWMutex
	principals map[string]string // principal -> keytab secret
}

// NewKDC returns an empty KDC.
func NewKDC() *KDC {
	return &KDC{principals: make(map[string]string)}
}

// AddPrincipal registers a principal with its keytab secret.
func (k *KDC) AddPrincipal(principal, keytab string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.principals[principal] = keytab
}

// Authenticate verifies a principal/keytab pair.
func (k *KDC) Authenticate(principal, keytab string) error {
	k.mu.RLock()
	defer k.mu.RUnlock()
	want, ok := k.principals[principal]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoPrincipal, principal)
	}
	if want != keytab {
		return fmt.Errorf("%w: bad keytab for %q", ErrAuthFailed, principal)
	}
	return nil
}

// Token is a delegation token scoped to one cluster.
type Token struct {
	Cluster   string    `json:"cluster"`
	Principal string    `json:"principal"`
	ID        uint64    `json:"id"`
	IssuedAt  time.Time `json:"issued_at"`
	ExpiresAt time.Time `json:"expires_at"`
	Signature string    `json:"signature"`
}

// Encode serializes the token for propagation (e.g. driver → executors).
func (t Token) Encode() string {
	b, err := json.Marshal(t)
	if err != nil {
		// Token has no unmarshalable fields; this cannot happen.
		panic(err)
	}
	return base64.StdEncoding.EncodeToString(b)
}

// DecodeToken parses a token produced by Encode.
func DecodeToken(s string) (Token, error) {
	var t Token
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return t, fmt.Errorf("%w: %v", ErrTokenInvalid, err)
	}
	if err := json.Unmarshal(b, &t); err != nil {
		return t, fmt.Errorf("%w: %v", ErrTokenInvalid, err)
	}
	return t, nil
}

// TokenService issues and validates tokens for one secure cluster. It plays
// the role HBase's TokenProvider coprocessor plays in the real system.
type TokenService struct {
	cluster  string
	kdc      *KDC
	secret   []byte
	lifetime time.Duration
	now      Clock
	meter    *metrics.Registry

	mu      sync.Mutex
	nextID  uint64
	revoked map[uint64]bool
}

// NewTokenService creates a token service for cluster backed by kdc.
// lifetime bounds token validity; now may be nil for wall-clock time.
func NewTokenService(cluster string, kdc *KDC, lifetime time.Duration, now Clock, meter *metrics.Registry) *TokenService {
	if now == nil {
		now = time.Now
	}
	return &TokenService{
		cluster:  cluster,
		kdc:      kdc,
		secret:   []byte("svc-secret-" + cluster),
		lifetime: lifetime,
		now:      now,
		meter:    meter,
		revoked:  make(map[uint64]bool),
	}
}

// Cluster returns the cluster this service protects.
func (s *TokenService) Cluster() string { return s.cluster }

func (s *TokenService) sign(t *Token) string {
	mac := hmac.New(sha256.New, s.secret)
	fmt.Fprintf(mac, "%s|%s|%d|%d|%d", t.Cluster, t.Principal, t.ID, t.IssuedAt.UnixNano(), t.ExpiresAt.UnixNano())
	return hex.EncodeToString(mac.Sum(nil))
}

// Issue authenticates the principal against the KDC and returns a fresh
// token.
func (s *TokenService) Issue(principal, keytab string) (Token, error) {
	if err := s.kdc.Authenticate(principal, keytab); err != nil {
		return Token{}, err
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()
	now := s.now()
	t := Token{
		Cluster:   s.cluster,
		Principal: principal,
		ID:        id,
		IssuedAt:  now,
		ExpiresAt: now.Add(s.lifetime),
	}
	t.Signature = s.sign(&t)
	s.meter.Inc(metrics.TokensFetched)
	return t, nil
}

// Renew issues a replacement for a still-valid token without re-consulting
// the KDC.
func (s *TokenService) Renew(t Token) (Token, error) {
	if err := s.Validate(t.Encode()); err != nil {
		return Token{}, err
	}
	now := s.now()
	t.IssuedAt = now
	t.ExpiresAt = now.Add(s.lifetime)
	t.Signature = s.sign(&t)
	s.meter.Inc(metrics.TokensRenewed)
	return t, nil
}

// Revoke invalidates a token by ID.
func (s *TokenService) Revoke(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revoked[id] = true
}

// Validate checks an encoded token: signature, cluster, expiry, revocation.
// It satisfies hbase.TokenValidator via closure.
func (s *TokenService) Validate(encoded string) error {
	t, err := DecodeToken(encoded)
	if err != nil {
		return err
	}
	if t.Cluster != s.cluster {
		return fmt.Errorf("%w: token for cluster %q presented to %q", ErrTokenInvalid, t.Cluster, s.cluster)
	}
	sig := t.Signature
	t.Signature = ""
	if !hmac.Equal([]byte(sig), []byte(s.sign(&t))) {
		return fmt.Errorf("%w: bad signature", ErrTokenInvalid)
	}
	if !s.now().Before(t.ExpiresAt) {
		return fmt.Errorf("%w: at %v", ErrTokenExpired, t.ExpiresAt)
	}
	s.mu.Lock()
	revoked := s.revoked[t.ID]
	s.mu.Unlock()
	if revoked {
		return fmt.Errorf("%w: revoked", ErrTokenInvalid)
	}
	return nil
}

// Validator adapts the service to the hbase.TokenValidator shape.
func (s *TokenService) Validator() func(string) error {
	return s.Validate
}
