package security

import (
	"fmt"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// CredentialsConfig mirrors the paper's configuration surface (Code 6 and
// §V-B.2): the credential manager is off by default, and its renewal policy
// is tunable.
type CredentialsConfig struct {
	// Enabled corresponds to
	// spark.hbase.connector.security.credentials.enabled.
	Enabled bool
	// Principal and Keytab identify the user to every KDC.
	Principal string
	Keytab    string
	// ExpireTimeFraction of a token's lifetime after which it is treated
	// as expired locally; defaults to 0.95.
	ExpireTimeFraction float64
	// RefreshTimeFraction of a token's lifetime after which the background
	// refresher renews it; defaults to 0.6.
	RefreshTimeFraction float64
	// RefreshDuration is the period of the background refresher; defaults
	// to one minute.
	RefreshDuration time.Duration
	// Now injects a clock for tests.
	Now Clock
}

func (c CredentialsConfig) withDefaults() CredentialsConfig {
	if c.ExpireTimeFraction <= 0 || c.ExpireTimeFraction > 1 {
		c.ExpireTimeFraction = 0.95
	}
	if c.RefreshTimeFraction <= 0 || c.RefreshTimeFraction > 1 {
		c.RefreshTimeFraction = 0.6
	}
	if c.RefreshDuration <= 0 {
		c.RefreshDuration = time.Minute
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// CredentialsManager is SHCCredentialsManager: it keeps one token per
// secure cluster, fetching on first use, serving cached tokens while they
// are fresh, and renewing them before they expire — which is what lets one
// Spark application join data across multiple secure clusters without a
// restart (paper §V-B.2).
type CredentialsManager struct {
	cfg   CredentialsConfig
	meter *metrics.Registry

	mu       sync.Mutex
	services map[string]*TokenService // cluster -> issuer
	cache    map[string]Token         // cluster -> live token

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCredentialsManager builds a manager with the given policy.
func NewCredentialsManager(cfg CredentialsConfig, meter *metrics.Registry) *CredentialsManager {
	return &CredentialsManager{
		cfg:      cfg.withDefaults(),
		meter:    meter,
		services: make(map[string]*TokenService),
		cache:    make(map[string]Token),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// RegisterCluster tells the manager how to reach a secure cluster's token
// service — the pluggable acquisition point SPARK-14743 introduced.
func (m *CredentialsManager) RegisterCluster(svc *TokenService) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.services[svc.Cluster()] = svc
}

// Token implements hbase.TokenProvider: it returns an encoded token for
// cluster, from cache when fresh.
func (m *CredentialsManager) Token(cluster string) (string, error) {
	t, err := m.TokenForCluster(cluster)
	if err != nil {
		return "", err
	}
	return t.Encode(), nil
}

// TokenForCluster is the paper's getTokenForCluster: cache hit if the
// cached token is not near expiry, otherwise fetch a fresh one.
func (m *CredentialsManager) TokenForCluster(cluster string) (Token, error) {
	if !m.cfg.Enabled {
		return Token{}, fmt.Errorf("security: credentials manager disabled; set Enabled to use secure clusters")
	}
	m.mu.Lock()
	svc, ok := m.services[cluster]
	if !ok {
		m.mu.Unlock()
		return Token{}, fmt.Errorf("security: no token service registered for cluster %q", cluster)
	}
	if t, ok := m.cache[cluster]; ok && !m.nearExpiry(t, m.cfg.ExpireTimeFraction) {
		m.mu.Unlock()
		m.meter.Inc(metrics.TokensCacheHits)
		return t, nil
	}
	m.mu.Unlock()

	t, err := svc.Issue(m.cfg.Principal, m.cfg.Keytab)
	if err != nil {
		return Token{}, err
	}
	m.mu.Lock()
	m.cache[cluster] = t
	m.mu.Unlock()
	return t, nil
}

// nearExpiry reports whether fraction of the token's lifetime has elapsed.
func (m *CredentialsManager) nearExpiry(t Token, fraction float64) bool {
	life := t.ExpiresAt.Sub(t.IssuedAt)
	cutoff := t.IssuedAt.Add(time.Duration(float64(life) * fraction))
	return !m.cfg.Now().Before(cutoff)
}

// RefreshNow renews every cached token past its refresh fraction; the
// background executor calls this periodically, and tests call it directly.
// It returns how many tokens were renewed.
func (m *CredentialsManager) RefreshNow() (int, error) {
	m.mu.Lock()
	type job struct {
		cluster string
		svc     *TokenService
		tok     Token
	}
	var jobs []job
	for cluster, tok := range m.cache {
		if m.nearExpiry(tok, m.cfg.RefreshTimeFraction) {
			jobs = append(jobs, job{cluster, m.services[cluster], tok})
		}
	}
	m.mu.Unlock()

	renewed := 0
	var firstErr error
	for _, j := range jobs {
		t, err := j.svc.Renew(j.tok)
		if err != nil {
			// An unrenewable token (expired while idle) falls back to a
			// fresh issue on the next TokenForCluster; drop it.
			m.mu.Lock()
			delete(m.cache, j.cluster)
			m.mu.Unlock()
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		m.mu.Lock()
		m.cache[j.cluster] = t
		m.mu.Unlock()
		renewed++
	}
	return renewed, firstErr
}

// Start launches the token-update executor.
func (m *CredentialsManager) Start() {
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(m.cfg.RefreshDuration)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = m.RefreshNow()
			case <-m.stop:
				return
			}
		}
	}()
}

// Stop terminates the background refresher (idempotent; safe without Start,
// in which case it only marks the manager stopped).
func (m *CredentialsManager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// CachedClusters lists clusters with a live cached token, for inspection.
func (m *CredentialsManager) CachedClusters() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.cache))
	for c := range m.cache {
		out = append(out, c)
	}
	return out
}
